// Tests for the precomputed weighted-draw structures behind the samplers
// (support/alias_table, sampling/sample_scratch): distribution
// correctness, determinism, the zero-total-mass guards, and the
// epoch-stamped marker semantics the flat sampling pipeline relies on.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sampling/sample_scratch.hpp"
#include "support/alias_table.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace gnav {
namespace {

TEST(AliasTable, MatchesWeightsEmpirically) {
  const std::vector<double> weights = {1.0, 0.0, 3.0, 6.0};
  support::AliasTable table(weights);
  ASSERT_EQ(table.size(), 4u);
  EXPECT_FALSE(table.uniform_fallback());
  Rng rng(71);
  std::vector<int> counts(weights.size(), 0);
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) ++counts[table.sample(rng)];
  EXPECT_EQ(counts[1], 0);  // zero-weight index must never be drawn
  const double total = 10.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double expected = weights[i] / total;
    const double observed =
        static_cast<double>(counts[i]) / static_cast<double>(draws);
    EXPECT_NEAR(observed, expected, 0.01) << "index " << i;
  }
}

TEST(AliasTable, DeterministicGivenRngState) {
  const std::vector<double> weights = {0.5, 2.5, 1.0, 0.25, 4.0};
  support::AliasTable table(weights);
  Rng a(5);
  Rng b(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(table.sample(a), table.sample(b));
  }
}

TEST(AliasTable, ZeroMassFallsBackToUniform) {
  // The hazard: every weight zero (e.g. a fully biased draw over a
  // support with no preferred vertex). The draw must stay well-defined.
  const std::vector<double> weights = {0.0, 0.0, 0.0};
  support::AliasTable table(weights);
  EXPECT_TRUE(table.uniform_fallback());
  Rng rng(9);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 30000; ++i) ++counts[table.sample(rng)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / 30000.0, 1.0 / 3.0, 0.02);
  }
}

TEST(AliasTable, RejectsInvalidWeights) {
  support::AliasTable table;
  const std::vector<double> negative = {1.0, -0.5};
  EXPECT_THROW(table.build(negative), Error);
  const std::vector<double> nan = {1.0, std::nan("")};
  EXPECT_THROW(table.build(nan), Error);
  support::AliasTable empty;
  Rng rng(1);
  EXPECT_THROW(empty.sample(rng), Error);
}

TEST(AliasTable, RebuildReusesStorage) {
  support::AliasTable table;
  table.build(std::vector<double>{1.0, 2.0});
  EXPECT_EQ(table.size(), 2u);
  table.build(std::vector<double>{3.0, 1.0, 1.0});
  EXPECT_EQ(table.size(), 3u);
  Rng rng(3);
  int zero = 0;
  for (int i = 0; i < 40000; ++i) zero += table.sample(rng) == 0;
  EXPECT_NEAR(zero / 40000.0, 0.6, 0.01);
}

TEST(RngSampleCumulative, ZeroTotalMassThrowsClearError) {
  Rng rng(1);
  const std::vector<double> zeros = {0.0, 0.0, 0.0};
  try {
    rng.sample_cumulative(zeros);
    FAIL() << "expected gnav::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("zero total mass"),
              std::string::npos)
        << "message was: " << e.what();
  }
}

TEST(TwoGroupDraw, ZeroMassFallsBackToUniform) {
  // Both group weights zero — the guard the biased fanout path needs at
  // bias-rate extremes.
  const std::vector<graph::NodeId> nb = {10, 11, 12, 13};
  const std::vector<char> preference(20, 0);
  std::vector<std::uint32_t> pref_buf;
  std::vector<std::uint32_t> rest_buf;
  const sampling::TwoGroupDraw draw(nb, preference, /*preferred_weight=*/0.0,
                                    /*other_weight=*/0.0, pref_buf, rest_buf);
  EXPECT_TRUE(draw.zero_mass());
  Rng rng(13);
  std::vector<int> counts(nb.size(), 0);
  for (int i = 0; i < 40000; ++i) ++counts[draw.sample(rng)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / 40000.0, 0.25, 0.02);
  }
}

TEST(TwoGroupDraw, RespectsPreferenceWeights) {
  // Neighbors 0,1 preferred at weight 4, neighbors 2,3 at weight 1 →
  // preferred mass 8/10.
  const std::vector<graph::NodeId> nb = {0, 1, 2, 3};
  std::vector<char> preference(4, 0);
  preference[0] = preference[1] = 1;
  std::vector<std::uint32_t> pref_buf;
  std::vector<std::uint32_t> rest_buf;
  const sampling::TwoGroupDraw draw(nb, preference, 4.0, 1.0, pref_buf,
                                    rest_buf);
  EXPECT_FALSE(draw.zero_mass());
  Rng rng(17);
  int preferred = 0;
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) preferred += draw.sample(rng) < 2;
  EXPECT_NEAR(static_cast<double>(preferred) / draws, 0.8, 0.01);
}

TEST(NodeMarker, StampedPassesIsolateState) {
  sampling::NodeMarker marker;
  marker.begin_pass(8);
  EXPECT_TRUE(marker.insert(3));
  EXPECT_FALSE(marker.insert(3));
  EXPECT_TRUE(marker.contains(3));
  EXPECT_FALSE(marker.contains(4));
  marker.set(5, 42);
  EXPECT_EQ(marker.get(5), 42);
  EXPECT_EQ(marker.get(6), sampling::NodeMarker::kAbsent);
  // A new pass forgets everything in O(1).
  marker.begin_pass(8);
  EXPECT_FALSE(marker.contains(3));
  EXPECT_EQ(marker.get(5), sampling::NodeMarker::kAbsent);
  EXPECT_TRUE(marker.insert(3));
  // Growing mid-stream preserves the current pass.
  marker.begin_pass(16);
  marker.set(15, 7);
  EXPECT_EQ(marker.get(15), 7);
  EXPECT_FALSE(marker.contains(3));
}

}  // namespace
}  // namespace gnav
