// Known-good: every kernel-reaching thread body pins a TLS scope
// before the first reaching call (the stage-closure pattern in
// runtime/backend.cpp), and threads that never touch kernel code need
// no scope at all.
#include "gnav_stub.hpp"

namespace {
void churn(const float* x, float* y) { gnav::kernels::spmm(x, y, 64); }
}  // namespace

void pinned_backend(const float* x, float* y) {
  std::thread worker([x, y] {
    gnav::compute::BackendScope scope("cpu-scalar");
    gnav::kernels::spmm(x, y, 4);
  });
  worker.join();
}

void pinned_spmm_impl(const float* x, float* y) {
  std::thread worker([x, y] {
    gnav::kernels::SpmmImplScope impl(0);
    churn(x, y);
  });
  worker.join();
}

void no_kernel_work() {
  std::thread worker([] {
    int acc = 0;
    ++acc;
    (void)acc;
  });
  worker.join();
}
