#include "sampling/sample_scratch.hpp"

namespace gnav::sampling {

SampleScratch& SampleScratch::local() {
  thread_local SampleScratch scratch;
  return scratch;
}

}  // namespace gnav::sampling
