// Compile-FAIL check (ctest WILL_FAIL): calling a GNAV_REQUIRES(mu_)
// method without holding mu_ must be rejected by -Werror=thread-safety.
// This pins the `_locked` method convention used across the codebase
// (pick_next_locked, insert_locked, ...): a public entry point that
// forgets to take the lock before delegating is a compile error, not a
// latent race.
//
// Built with `-fsyntax-only -Wthread-safety -Werror=thread-safety` by
// the ThreadSafetyNegative ctest entries (Clang configurations only).
#include "support/thread_safety.hpp"

namespace {

class Queue {
 public:
  // BUG (deliberate): public method delegates to the _locked helper
  // without acquiring mu_ first.
  int pop() { return pop_locked(); }

 private:
  int pop_locked() GNAV_REQUIRES(mu_) {
    const int v = head_;
    head_ += 1;
    return v;
  }

  gnav::support::Mutex mu_;
  int head_ GNAV_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Queue q;
  return q.pop();
}
