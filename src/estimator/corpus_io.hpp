// Profiled-corpus persistence. Collecting an estimator training corpus
// means running real training jobs, so users cache it on disk: the
// corpus CSV round-trips every field the estimator consumes (config,
// dataset statistics, measured report scalars).
#pragma once

#include <string>
#include <vector>

#include "estimator/profile_collector.hpp"

namespace gnav::estimator {

/// Writes the corpus as CSV; throws on I/O failure.
void save_corpus(const std::vector<ProfiledRun>& corpus,
                 const std::string& path);

/// Reads a corpus written by save_corpus; validates the header and every
/// config. The schema is versioned: current (v3) files carry a version
/// token, the executor-config/stall columns, and the compute-backend id
/// column. Older files still load and migrate in place — v2 (no backend
/// column) rows get backend "cpu-blocked", the factory default every
/// pre-backend run actually executed on; v1 rows (no executor columns
/// either) additionally default the executor fields to sync rows, which
/// the overlap-model fit skips by design. Throws gnav::Error on
/// malformed input, naming the file and the expected-vs-found header on
/// a mismatch.
std::vector<ProfiledRun> load_corpus(const std::string& path);

}  // namespace gnav::estimator
