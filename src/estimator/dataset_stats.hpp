// Compact dataset descriptor consumed by the performance estimator —
// the "Graph Profiling" output of Step 1 (data distribution, sizes) plus
// the bookkeeping needed to extrapolate to original dataset scale.
#pragma once

#include <string>

#include "graph/dataset.hpp"
#include "graph/graph_stats.hpp"

namespace gnav::estimator {

struct DatasetStats {
  std::string name;
  graph::GraphProfile profile;
  std::size_t num_train_nodes = 0;
  int feature_dim = 0;
  int num_classes = 0;
  double real_scale_factor = 1.0;
  double real_feature_scale = 1.0;
  double real_volume_scale = 1.0;
  /// Static-cache coverage priors at a few reference ratios (white-box
  /// inputs for the hit-rate model).
  double coverage_at_10 = 0.0;
  double coverage_at_25 = 0.0;
  double coverage_at_50 = 0.0;
};

DatasetStats compute_dataset_stats(const graph::Dataset& ds);

}  // namespace gnav::estimator
