// Compile-FAIL check (ctest WILL_FAIL): reading a GNAV_GUARDED_BY field
// with no lock held must be rejected by Clang's -Werror=thread-safety.
// If this file ever compiles cleanly under the analysis, the annotation
// macros have degraded to no-ops on a compiler that should enforce them.
//
// Built with `-fsyntax-only -Wthread-safety -Werror=thread-safety` by
// the ThreadSafetyNegative ctest entries (Clang configurations only).
#include "support/thread_safety.hpp"

namespace {

class Counter {
 public:
  void bump() {
    const gnav::support::MutexLock lock(mu_);
    ++value_;
  }
  // BUG (deliberate): reads value_ without mu_ — the exact shape of the
  // unguarded starts_ read this PR fixed in JobScheduler::drain().
  int peek() const { return value_; }

 private:
  mutable gnav::support::Mutex mu_;
  int value_ GNAV_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.bump();
  return c.peek();
}
