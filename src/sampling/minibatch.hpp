// Mini-batch produced by a sampler: a local-id subgraph plus the mapping
// back to global vertex ids. Training computes loss only on the seed
// vertices; the remaining nodes are context gathered by the sampler.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"

namespace gnav::sampling {

struct MiniBatch {
  /// Symmetrized subgraph over local ids 0..nodes.size()-1.
  graph::CsrGraph subgraph;
  /// nodes[local] = global vertex id. Seeds occupy the first positions.
  std::vector<graph::NodeId> nodes;
  /// Local-row indices of the seed (target) vertices.
  std::vector<std::int64_t> seed_local;
  /// Host-side sampling effort in "neighbor candidate" units — the volume
  /// the cost model feeds f_sample (Eq. 7 uses |V_i| - |B_0|; this work
  /// counter additionally captures fanout scanning).
  double sampling_work = 0.0;

  std::int64_t num_nodes() const {
    return static_cast<std::int64_t>(nodes.size());
  }
  std::int64_t num_edges() const { return subgraph.num_edges(); }

  /// Structural sanity: local/global consistency, seeds present, subgraph
  /// symmetric. Throws gnav::Error on violation (used by tests and debug
  /// paths).
  void validate(const graph::CsrGraph& parent) const;
};

}  // namespace gnav::sampling
