// Design space exploration (paper Fig. 4).
//
// The explorer starts from an initial candidate set seeded with the
// templates of existing works (so GNNavigator never loses to a system it
// can reproduce), then walks the remaining design space depth-first,
// pruning whole subtrees whose *analytic lower bounds* already violate a
// runtime constraint:
//   - Γ lower bound: framework overhead + cache memory of the partially
//     assigned cache ratio (memory can only grow from there);
//   - T lower bound: compute-only epoch time at the smallest remaining
//     batch expansion.
// Every surviving leaf is scored through the gray-box estimator.
#pragma once

#include <cstdint>
#include <vector>

#include "dse/design_space.hpp"
#include "dse/objectives.hpp"
#include "dse/pareto.hpp"
#include "estimator/perf_estimator.hpp"

namespace gnav::support {
class ThreadPool;
}

namespace gnav::dse {

struct Candidate {
  runtime::TrainConfig config;
  estimator::PerfPrediction predicted;

  PerfPoint point() const {
    return {predicted.time_s, predicted.memory_gb, predicted.accuracy};
  }
};

struct ExplorationStats {
  std::size_t nodes_visited = 0;   // DFS tree nodes touched
  std::size_t subtrees_pruned = 0; // cut by constraint bounds
  std::size_t leaves_evaluated = 0;
  std::size_t feasible = 0;
};

struct ExplorationResult {
  std::vector<Candidate> feasible;   // constraint-satisfying leaves
  std::vector<std::size_t> pareto;   // indices into `feasible`
  ExplorationStats stats;
};

class Explorer {
 public:
  Explorer(const DesignSpace& space, const estimator::PerfEstimator& est,
           estimator::DatasetStats stats);

  /// DFS exploration with constraint pruning + template seeding.
  ExplorationResult explore(const RuntimeConstraints& constraints,
                            const std::vector<runtime::TrainConfig>&
                                initial_templates) const;

  /// Exhaustive exploration (no pruning) — used to measure how much the
  /// DFS bounds save (ablation) and to drive Fig. 6 sweeps.
  ExplorationResult explore_exhaustive(
      const RuntimeConstraints& constraints) const;

  /// Pool the candidate predictions fan out on (nullptr → global pool).
  /// Results are identical at any pool size: candidate order is fixed by
  /// the traversal, prediction is pure, and feasibility filtering runs
  /// serially afterwards.
  void set_pool(support::ThreadPool* pool) { pool_ = pool; }

 private:
  /// Prediction limits plus capability feasibility: a config whose shape
  /// the constraint backend's DECLARED capabilities cannot execute
  /// (feature/hidden dim beyond max_feature_dim, pipeline_overlap on a
  /// backend without async transfer) is infeasible regardless of its
  /// predicted Perf.
  bool satisfies(const runtime::TrainConfig& config,
                 const estimator::PerfPrediction& p,
                 const RuntimeConstraints& c) const;
  void dfs(std::vector<std::size_t>& levels, std::size_t axis,
           const RuntimeConstraints& constraints, ExplorationResult& result,
           std::vector<runtime::TrainConfig>& leaves) const;
  /// Predicts `configs` concurrently, then appends the feasible ones to
  /// `result` in input order.
  void evaluate_candidates(const std::vector<runtime::TrainConfig>& configs,
                           const RuntimeConstraints& constraints,
                           ExplorationResult& result) const;
  /// Sound lower bounds for pruning at a partial assignment (axes
  /// [0, axis) fixed).
  double memory_lower_bound_gb(const std::vector<std::size_t>& levels,
                               std::size_t axis) const;
  void finish_result(ExplorationResult& result) const;

  const DesignSpace* space_;
  const estimator::PerfEstimator* estimator_;
  estimator::DatasetStats stats_;
  support::ThreadPool* pool_ = nullptr;
};

}  // namespace gnav::dse
