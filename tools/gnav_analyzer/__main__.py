"""Entry point for `python3 tools/gnav_analyzer` (directory execution)
and `python3 -m gnav_analyzer`. Directory execution puts the package
dir itself on sys.path, so bootstrap the parent before importing."""

import sys
from pathlib import Path

if __package__ in (None, ""):
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from gnav_analyzer.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
