#include "dse/design_space.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace gnav::dse {

DesignSpace::DesignSpace(BaseSettings base, bool reduced) : base_(base) {
  if (reduced) {
    batch_sizes_ = {512, 1024};
    samplers_ = {sampling::SamplerKind::kNodeWise};
    fanouts_ = {5, 10, 25};
    walk_lengths_ = {4};
    cache_ratios_ = {0.0, 0.10, 0.25, 0.50, 0.25};
    policies_ = {cache::CachePolicy::kNone, cache::CachePolicy::kStatic,
                 cache::CachePolicy::kStatic, cache::CachePolicy::kStatic,
                 cache::CachePolicy::kLru};
    bias_rates_ = {0.0, 0.7};
    hidden_dims_ = {64};
    reorder_ = {0};
  } else {
    batch_sizes_ = {256, 512, 1024, 2048};
    samplers_ = {sampling::SamplerKind::kNodeWise,
                 sampling::SamplerKind::kLayerWise,
                 sampling::SamplerKind::kSaintWalk,
                 sampling::SamplerKind::kCluster};
    fanouts_ = {5, 10, 15, 25};
    walk_lengths_ = {2, 4, 6};
    cache_ratios_ = {0.0, 0.05, 0.10, 0.25, 0.50, 0.25, 0.25};
    policies_ = {cache::CachePolicy::kNone,   cache::CachePolicy::kStatic,
                 cache::CachePolicy::kStatic, cache::CachePolicy::kStatic,
                 cache::CachePolicy::kStatic, cache::CachePolicy::kLru,
                 cache::CachePolicy::kWeightedDegree};
    bias_rates_ = {0.0, 0.3, 0.7};
    hidden_dims_ = {32, 64, 128};
    reorder_ = {0, 1};
    compress_ = {0, 1};
  }
  if (compress_.empty()) compress_ = {0};
  GNAV_CHECK(cache_ratios_.size() == policies_.size(),
             "cache axis tables out of sync");
  axes_ = {
      {"batch_size", batch_sizes_.size()},
      {"sampler", samplers_.size()},
      {"fanout", std::max(fanouts_.size(), walk_lengths_.size())},
      {"cache", cache_ratios_.size()},
      {"bias_rate", bias_rates_.size()},
      {"hidden_dim", hidden_dims_.size()},
      {"reorder", reorder_.size()},
      {"compress", compress_.size()},
  };
}

DesignSpace DesignSpace::full(const BaseSettings& base) {
  return DesignSpace(base, /*reduced=*/false);
}

DesignSpace DesignSpace::reduced(const BaseSettings& base) {
  return DesignSpace(base, /*reduced=*/true);
}

std::size_t DesignSpace::raw_size() const {
  std::size_t total = 1;
  for (const Axis& a : axes_) total *= a.cardinality;
  return total;
}

bool DesignSpace::materialize(const std::vector<std::size_t>& levels,
                              runtime::TrainConfig* out) const {
  GNAV_CHECK(levels.size() == axes_.size(), "level vector width mismatch");
  for (std::size_t i = 0; i < levels.size(); ++i) {
    GNAV_CHECK(levels[i] < axes_[i].cardinality, "axis level out of range");
  }
  runtime::TrainConfig c;
  c.model = base_.model;
  c.num_layers = base_.num_layers;
  c.dropout = base_.dropout;
  c.learning_rate = base_.learning_rate;

  c.batch_size = batch_sizes_[levels[0]];
  c.sampler = samplers_[levels[1]];
  const bool saint = c.sampler == sampling::SamplerKind::kSaintWalk ||
                     c.sampler == sampling::SamplerKind::kSaintNode ||
                     c.sampler == sampling::SamplerKind::kSaintEdge;
  if (c.sampler == sampling::SamplerKind::kCluster) {
    // Cluster sampling has no fanout axis; only level 0 is meaningful.
    if (levels[2] != 0) return false;
    c.hop_list = {-1};
  } else if (saint) {
    // The fanout axis is shared; levels beyond the walk-length table are
    // invalid (rather than aliased) so DFS and enumerate() agree exactly.
    if (levels[2] >= walk_lengths_.size()) return false;
    const int len = walk_lengths_[levels[2]];
    c.hop_list = std::vector<int>(static_cast<std::size_t>(len), 1);
  } else {
    if (levels[2] >= fanouts_.size()) return false;
    c.hop_list = std::vector<int>(base_.num_layers, fanouts_[levels[2]]);
  }
  c.cache_ratio = cache_ratios_[levels[3]];
  c.cache_policy = policies_[levels[3]];
  c.bias_rate = bias_rates_[levels[4]];
  if (c.bias_rate > 0.0 &&
      c.cache_policy == cache::CachePolicy::kNone) {
    return false;  // nothing to bias toward
  }
  c.hidden_dim = hidden_dims_[levels[5]];
  c.reorder = reorder_[levels[6]] != 0;
  c.compress_features = compress_[levels[7]] != 0;
  c.name = "dse";
  c.validate();
  *out = c;
  return true;
}

std::vector<runtime::TrainConfig> DesignSpace::enumerate() const {
  std::vector<runtime::TrainConfig> out;
  std::vector<std::size_t> levels(axes_.size(), 0);
  while (true) {
    runtime::TrainConfig c;
    if (materialize(levels, &c)) {
      const bool duplicate =
          std::any_of(out.begin(), out.end(),
                      [&](const runtime::TrainConfig& other) {
                        return other == c;
                      });
      if (!duplicate) out.push_back(std::move(c));
    }
    // Odometer increment.
    std::size_t axis = axes_.size();
    while (axis > 0) {
      --axis;
      if (++levels[axis] < axes_[axis].cardinality) break;
      levels[axis] = 0;
      if (axis == 0) return out;
    }
  }
}

}  // namespace gnav::dse
