// Tests for the graph partitioner and the Cluster-GCN-style sampler
// built on it, plus the runtime knobs added for the extension categories
// (INT8 feature compression, pipeline-overlap toggle).
#include <gtest/gtest.h>

#include "graph/dataset.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "hw/platform.hpp"
#include "runtime/backend.hpp"
#include "runtime/templates.hpp"
#include "sampling/cluster_sampler.hpp"
#include "sampling/sampler_factory.hpp"
#include "support/error.hpp"

namespace gnav {
namespace {

graph::CsrGraph community_graph() {
  Rng rng(5);
  std::vector<int> blocks;
  return graph::power_law_community_graph(800, 8, 2.3, 3, 80, 0.8, rng,
                                          &blocks);
}

TEST(Partition, CoversAndBalances) {
  const auto g = community_graph();
  const auto part = graph::bfs_partition(g, 8);
  EXPECT_NO_THROW(part.validate(g));
  EXPECT_EQ(part.num_parts, 8);
  // balance: every part within the 1.5x-average growth cap (+1 seed slack)
  const std::size_t cap = (800 * 3) / (2 * 8) + 1;
  std::size_t covered = 0;
  for (const auto& members : part.members) {
    EXPECT_LE(members.size(), cap + 1);
    covered += members.size();
  }
  EXPECT_EQ(covered, 800u);
}

TEST(Partition, LocalityBeatsRandomAssignment) {
  // BFS partitioning should cut far fewer edges than a random
  // round-robin split with the same part count.
  const auto g = community_graph();
  const auto part = graph::bfs_partition(g, 8);
  // A truly random assignment (note: v % 8 would coincide with the
  // planted communities of the generator, which is the opposite of
  // random here).
  graph::Partitioning random;
  random.num_parts = 8;
  random.part_of.resize(static_cast<std::size_t>(g.num_nodes()));
  random.members.resize(8);
  Rng rng(77);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    const int p = static_cast<int>(rng.uniform_index(8));
    random.part_of[static_cast<std::size_t>(v)] = p;
    random.members[static_cast<std::size_t>(p)].push_back(v);
  }
  EXPECT_LT(part.edge_cut_fraction(g),
            0.8 * random.edge_cut_fraction(g));
}

TEST(Partition, EdgeCases) {
  const auto g = community_graph();
  EXPECT_THROW(graph::bfs_partition(g, 0), Error);
  EXPECT_THROW(graph::bfs_partition(g, 801), Error);
  const auto one = graph::bfs_partition(g, 1);
  EXPECT_DOUBLE_EQ(one.edge_cut_fraction(g), 0.0);
}

TEST(ClusterSampler, BatchIsUnionOfClusters) {
  const auto g = community_graph();
  sampling::ClusterSampler sampler(/*num_parts=*/16,
                                   /*max_clusters_per_batch=*/4);
  const auto part_ptr = sampler.partitioning(g);
  const auto& part = *part_ptr;
  Rng rng(9);
  std::vector<graph::NodeId> seeds;
  for (auto v : rng.sample_without_replacement(g.num_nodes(), 64)) {
    seeds.push_back(v);
  }
  const auto mb = sampler.sample(g, seeds, rng);
  EXPECT_NO_THROW(mb.validate(g));
  // every non-seed batch node belongs to a cluster that contains a seed
  std::set<int> seed_parts;
  for (auto s : seeds) {
    seed_parts.insert(part.part_of[static_cast<std::size_t>(s)]);
  }
  for (std::size_t i = seeds.size(); i < mb.nodes.size(); ++i) {
    EXPECT_TRUE(seed_parts.contains(
        part.part_of[static_cast<std::size_t>(mb.nodes[i])]));
  }
}

TEST(ClusterSampler, DeterministicAndCached) {
  const auto g = community_graph();
  sampling::ClusterSampler sampler(16, 4);
  const auto first = sampler.partitioning(g);
  const auto second = sampler.partitioning(g);
  EXPECT_EQ(first.get(), second.get());  // partition computed once per graph
  Rng a(1);
  Rng b(1);
  std::vector<graph::NodeId> seeds = {0, 5, 9, 100, 222};
  EXPECT_EQ(sampler.sample(g, seeds, a).nodes,
            sampler.sample(g, seeds, b).nodes);
}

TEST(ClusterSampler, TiedSeedCountsPickTheLowestPartId) {
  // Regression for the seed-count ranking: it used to be built by
  // iterating an unordered_map in hash order, trusting the final sort's
  // id tie-break for determinism. The ranking is now a dense per-part
  // count vector; this pins the documented tie-break — equal seed
  // counts rank by ascending part id — independent of hash order.
  const auto g = community_graph();
  sampling::ClusterSampler sampler(/*num_parts=*/16,
                                   /*max_clusters_per_batch=*/4);
  const auto part_ptr = sampler.partitioning(g);
  const auto& part = *part_ptr;

  // One seed in each of four distinct parts: a four-way tie. The target
  // cluster count for 4 seeds out of 800 nodes rounds to 1, so exactly
  // one cluster is kept — and it must be the lowest-id seeded part.
  const std::vector<int> seeded_parts = {14, 11, 7, 3};
  std::vector<graph::NodeId> seeds;
  for (int p : seeded_parts) {
    ASSERT_FALSE(part.members[static_cast<std::size_t>(p)].empty());
    seeds.push_back(part.members[static_cast<std::size_t>(p)].front());
  }
  Rng rng(5);
  const auto mb = sampler.sample(g, seeds, rng);
  for (std::size_t i = seeds.size(); i < mb.nodes.size(); ++i) {
    EXPECT_EQ(part.part_of[static_cast<std::size_t>(mb.nodes[i])], 3)
        << "node " << mb.nodes[i];
  }
}

TEST(ClusterSampler, AvailableThroughFactoryAndConfig) {
  sampling::SamplerSettings s;
  s.kind = sampling::SamplerKind::kCluster;
  s.cluster_num_parts = 10;
  const auto sampler = sampling::make_sampler(s, nullptr);
  EXPECT_EQ(sampler->kind(), sampling::SamplerKind::kCluster);
  EXPECT_EQ(sampling::sampler_kind_from_string("cluster"),
            sampling::SamplerKind::kCluster);
  EXPECT_EQ(sampling::to_string(sampling::SamplerKind::kCluster),
            "cluster");
}

class RuntimeKnobs : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph::SyntheticSpec spec;
    spec.name = "knobs";
    spec.num_nodes = 700;
    spec.num_classes = 4;
    // Wide features so transfers are feature-dominated (the compression
    // test measures the 4x payload shrink against structure overhead).
    spec.feature_dim = 64;
    spec.min_degree = 3;
    spec.max_degree = 70;
    dataset_ = new graph::Dataset(graph::make_synthetic_dataset(spec, 6));
    backend_ = new runtime::RuntimeBackend(*dataset_,
                                           hw::make_profile("rtx4090"));
  }
  static void TearDownTestSuite() {
    delete backend_;
    delete dataset_;
  }
  static graph::Dataset* dataset_;
  static runtime::RuntimeBackend* backend_;
};

graph::Dataset* RuntimeKnobs::dataset_ = nullptr;
runtime::RuntimeBackend* RuntimeKnobs::backend_ = nullptr;

TEST_F(RuntimeKnobs, ClusterSamplerTrainsEndToEnd) {
  runtime::TrainConfig c = runtime::template_pyg();
  c.sampler = sampling::SamplerKind::kCluster;
  c.hop_list = {-1};
  c.batch_size = 128;
  runtime::RunOptions opts;
  opts.epochs = 2;
  const auto r = backend_->run(c, opts);
  EXPECT_GT(r.test_accuracy, 0.3);
  EXPECT_GT(r.avg_batch_nodes, 0.0);
}

TEST_F(RuntimeKnobs, CompressionCutsTransferTime) {
  runtime::TrainConfig base = runtime::template_pyg();
  base.batch_size = 128;
  runtime::TrainConfig compressed = base;
  compressed.compress_features = true;
  runtime::RunOptions opts;
  opts.epochs = 2;
  const auto r0 = backend_->run(base, opts);
  const auto r1 = backend_->run(compressed, opts);
  EXPECT_LT(r1.epoch_phases.transfer_s, 0.6 * r0.epoch_phases.transfer_s);
  // quantization noise must not destroy the model
  EXPECT_GT(r1.test_accuracy, r0.test_accuracy - 0.1);
}

TEST_F(RuntimeKnobs, DisablingPipelineSlowsEpochs) {
  runtime::TrainConfig base = runtime::template_pyg();
  base.batch_size = 128;
  runtime::TrainConfig sequential = base;
  sequential.pipeline_overlap = false;
  runtime::RunOptions opts;
  opts.epochs = 1;
  const auto r0 = backend_->run(base, opts);
  const auto r1 = backend_->run(sequential, opts);
  EXPECT_GT(r1.epoch_time_s, r0.epoch_time_s);
  // sequential time equals the sum of phases
  EXPECT_NEAR(r1.epoch_time_s, r1.epoch_phases.total(),
              r1.epoch_time_s * 0.02);
}

TEST_F(RuntimeKnobs, NewKnobsRoundTripThroughGuidelines) {
  runtime::TrainConfig c = runtime::template_pyg();
  c.sampler = sampling::SamplerKind::kCluster;
  c.hop_list = {-1};
  c.compress_features = true;
  c.pipeline_overlap = false;
  const auto parsed = runtime::TrainConfig::from_config_map(
      ConfigMap::parse(c.to_config_map().to_guideline_text()));
  EXPECT_TRUE(parsed == c);
  EXPECT_NE(c.summary().find("int8"), std::string::npos);
  EXPECT_NE(c.summary().find("no-pipeline"), std::string::npos);
}

}  // namespace
}  // namespace gnav
