// gnav::obs — process-wide metrics registry (half one of the telemetry
// layer; scoped trace spans live in obs/trace.hpp).
//
// Layers that already count things privately (StagedQueue stalls,
// DeviceCache hits, DeviceAllocator bytes, JobScheduler tenants) publish
// those counts here as named instruments so one Prometheus-style text
// snapshot shows the whole process. Three instrument kinds:
//
//   Counter   — monotone uint64 (events since process start).
//   Gauge     — double that goes up and down (bytes in use, queue depth)
//               or a monotone double sum (busy seconds; Prometheus
//               counters are doubles, ours are integral, so second-sums
//               are gauges by construction).
//   Histogram — fixed upper bounds chosen at registration; cumulative
//               bucket counts plus sum/count, Prometheus semantics.
//
// Contracts the rest of the codebase relies on:
//   - Cheap hot path: updating an instrument is one relaxed atomic RMW,
//     and every update is gated on `metrics_enabled()` (a relaxed load)
//     so the disabled path is near-zero and a run with metrics off is
//     observationally identical to one compiled without them.
//   - No Rng: nothing here reads or advances any random stream, so
//     enabling metrics can never perturb a TrainReport bit
//     (pinned by test_obs.cpp).
//   - Stable references: counter()/gauge()/histogram() return references
//     that live until process exit — resolve once, update forever.
//   - Deterministic exposition: snapshot() and write_prometheus() list
//     series in first-registration order, so single-threaded scenarios
//     produce byte-identical text across runs.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "support/thread_safety.hpp"

namespace gnav::obs {

namespace detail {
extern std::atomic<bool> g_metrics_enabled;
}  // namespace detail

/// Global toggle. Off by default; CLI/bench flags and tests flip it.
inline bool metrics_enabled() {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}
void set_metrics_enabled(bool enabled);

/// Label set of one series, rendered in the given order (callers pass
/// stable orders so series identity is deterministic).
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (!metrics_enabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) {
    if (!metrics_enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void add(double d) {
    if (!metrics_enabled()) return;
    value_.fetch_add(d, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

class Histogram {
 public:
  /// `bounds` must be strictly increasing upper bucket bounds; an
  /// implicit +Inf bucket is appended.
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  // bounds_ is set once by the constructor and never mutated, so the
  // reference cannot go stale.  gnav-lint(mutable-ref-accessor)
  const std::vector<double>& bounds() const { return bounds_; }
  /// Non-cumulative count of bucket i (i == bounds().size() is +Inf).
  std::uint64_t bucket_count(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t total_count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  void reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<double> sum_{0.0};
  std::atomic<std::uint64_t> count_{0};
};

/// One exposition sample: a fully-qualified series name (family plus
/// rendered labels, histogram sub-series expanded with the Prometheus
/// _bucket/_sum/_count suffixes) and its current value.
struct MetricSample {
  std::string name;
  double value = 0.0;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  /// Find-or-create. The (family, labels) pair is the series key; asking
  /// for an existing key with a different instrument kind throws
  /// gnav::Error. Returned references are valid for the process lifetime.
  Counter& counter(const std::string& family, const Labels& labels,
                   const std::string& help) GNAV_EXCLUDES(mu_);
  Gauge& gauge(const std::string& family, const Labels& labels,
               const std::string& help) GNAV_EXCLUDES(mu_);
  /// `bounds` applies on first registration of the series; later lookups
  /// of the same series ignore it.
  Histogram& histogram(const std::string& family, const Labels& labels,
                       const std::string& help, std::vector<double> bounds)
      GNAV_EXCLUDES(mu_);

  /// Every series value in first-registration order (histograms expand
  /// to their cumulative _bucket series plus _sum and _count).
  std::vector<MetricSample> snapshot() const GNAV_EXCLUDES(mu_);

  /// Prometheus text exposition format: one # HELP / # TYPE pair per
  /// family (at its first registered series), series in registration
  /// order.
  void write_prometheus(std::ostream& os) const GNAV_EXCLUDES(mu_);
  std::string prometheus_text() const GNAV_EXCLUDES(mu_);

  /// Zeroes every instrument's value but keeps all registrations (and
  /// their order), so tests can compare runs without re-resolving.
  void reset_values() GNAV_EXCLUDES(mu_);

  std::size_t series_count() const GNAV_EXCLUDES(mu_);

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Series {
    std::string family;
    std::string label_text;  // rendered "{k=\"v\",...}" or ""
    std::string help;
    Kind kind = Kind::kCounter;
    // Exactly one is engaged, matching `kind`; unique_ptr keeps the
    // instrument address stable across registry growth.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Series& find_or_create(const std::string& family, const Labels& labels,
                         const std::string& help, Kind kind)
      GNAV_REQUIRES(mu_);

  mutable support::Mutex mu_;
  /// Registration order; deque so Series addresses survive growth.
  std::deque<Series> series_ GNAV_GUARDED_BY(mu_);
  /// family+label_text -> index into series_.
  std::map<std::string, std::size_t> index_ GNAV_GUARDED_BY(mu_);
};

}  // namespace gnav::obs
