#include "obs/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "support/error.hpp"

namespace gnav::obs {

namespace detail {
std::atomic<bool> g_metrics_enabled{false};
}  // namespace detail

void set_metrics_enabled(bool enabled) {
  detail::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)) {
  GNAV_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                 std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                     bounds_.end(),
             "Histogram bounds must be strictly increasing");
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i] = 0;
}

void Histogram::observe(double v) {
  if (!metrics_enabled()) return;
  const std::size_t bucket = static_cast<std::size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  sum_.store(0.0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// MetricsRegistry

namespace {

/// Prometheus label-value escaping: backslash, double quote, newline.
std::string escape_label_value(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string render_labels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first + "=\"" + escape_label_value(labels[i].second) +
           "\"";
  }
  out += "}";
  return out;
}

/// Same rendering with one extra label appended (the histogram `le`).
std::string render_labels_with(const std::string& label_text,
                               const std::string& key,
                               const std::string& value) {
  const std::string extra = key + "=\"" + value + "\"";
  if (label_text.empty()) return "{" + extra + "}";
  std::string out = label_text;
  out.insert(out.size() - 1, "," + extra);
  return out;
}

/// Shortest round-trip double formatting (%.17g trims in practice via
/// %g's significant-digit semantics; value text is diagnostics, not data).
std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

std::string format_bound(double b) { return format_double(b); }

}  // namespace

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Series& MetricsRegistry::find_or_create(
    const std::string& family, const Labels& labels, const std::string& help,
    Kind kind) {
  const std::string key = family + render_labels(labels);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    Series& s = series_[it->second];
    GNAV_CHECK(s.kind == kind,
               "metric series \"" + key +
                   "\" already registered with a different instrument kind");
    return s;
  }
  series_.emplace_back();
  Series& s = series_.back();
  s.family = family;
  s.label_text = render_labels(labels);
  s.help = help;
  s.kind = kind;
  index_.emplace(key, series_.size() - 1);
  return s;
}

Counter& MetricsRegistry::counter(const std::string& family,
                                  const Labels& labels,
                                  const std::string& help) {
  const support::MutexLock lock(mu_);
  Series& s = find_or_create(family, labels, help, Kind::kCounter);
  if (!s.counter) s.counter = std::make_unique<Counter>();
  return *s.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& family, const Labels& labels,
                              const std::string& help) {
  const support::MutexLock lock(mu_);
  Series& s = find_or_create(family, labels, help, Kind::kGauge);
  if (!s.gauge) s.gauge = std::make_unique<Gauge>();
  return *s.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& family,
                                      const Labels& labels,
                                      const std::string& help,
                                      std::vector<double> bounds) {
  const support::MutexLock lock(mu_);
  Series& s = find_or_create(family, labels, help, Kind::kHistogram);
  if (!s.histogram) {
    s.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return *s.histogram;
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  const support::MutexLock lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(series_.size());
  for (const Series& s : series_) {
    const std::string base = s.family + s.label_text;
    switch (s.kind) {
      case Kind::kCounter:
        out.push_back({base, static_cast<double>(s.counter->value())});
        break;
      case Kind::kGauge:
        out.push_back({base, s.gauge->value()});
        break;
      case Kind::kHistogram: {
        const Histogram& h = *s.histogram;
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b <= h.bounds().size(); ++b) {
          cumulative += h.bucket_count(b);
          const std::string le = b < h.bounds().size()
                                     ? format_bound(h.bounds()[b])
                                     : "+Inf";
          out.push_back({s.family + "_bucket" +
                             render_labels_with(s.label_text, "le", le),
                         static_cast<double>(cumulative)});
        }
        out.push_back({s.family + "_sum" + s.label_text, h.sum()});
        out.push_back({s.family + "_count" + s.label_text,
                       static_cast<double>(h.total_count())});
        break;
      }
    }
  }
  return out;
}

void MetricsRegistry::write_prometheus(std::ostream& os) const {
  const support::MutexLock lock(mu_);
  std::string last_family;
  for (const Series& s : series_) {
    if (s.family != last_family) {
      last_family = s.family;
      if (!s.help.empty()) {
        os << "# HELP " << s.family << " " << s.help << "\n";
      }
      const char* type = s.kind == Kind::kCounter     ? "counter"
                         : s.kind == Kind::kGauge     ? "gauge"
                                                      : "histogram";
      os << "# TYPE " << s.family << " " << type << "\n";
    }
    switch (s.kind) {
      case Kind::kCounter:
        os << s.family << s.label_text << " " << s.counter->value() << "\n";
        break;
      case Kind::kGauge:
        os << s.family << s.label_text << " "
           << format_double(s.gauge->value()) << "\n";
        break;
      case Kind::kHistogram: {
        const Histogram& h = *s.histogram;
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b <= h.bounds().size(); ++b) {
          cumulative += h.bucket_count(b);
          const std::string le = b < h.bounds().size()
                                     ? format_bound(h.bounds()[b])
                                     : "+Inf";
          os << s.family << "_bucket"
             << render_labels_with(s.label_text, "le", le) << " "
             << cumulative << "\n";
        }
        os << s.family << "_sum" << s.label_text << " "
           << format_double(h.sum()) << "\n";
        os << s.family << "_count" << s.label_text << " " << h.total_count()
           << "\n";
        break;
      }
    }
  }
}

std::string MetricsRegistry::prometheus_text() const {
  std::ostringstream os;
  write_prometheus(os);
  return os.str();
}

void MetricsRegistry::reset_values() {
  const support::MutexLock lock(mu_);
  for (Series& s : series_) {
    switch (s.kind) {
      case Kind::kCounter:
        s.counter->reset();
        break;
      case Kind::kGauge:
        s.gauge->reset();
        break;
      case Kind::kHistogram:
        s.histogram->reset();
        break;
    }
  }
}

std::size_t MetricsRegistry::series_count() const {
  const support::MutexLock lock(mu_);
  return series_.size();
}

}  // namespace gnav::obs
