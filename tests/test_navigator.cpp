// Tests for the GNNavigator facade: the three-step workflow, guideline
// generation under priorities and constraints, and baseline reproduction.
#include <gtest/gtest.h>

#include "navigator/navigator.hpp"
#include "support/error.hpp"

namespace gnav::navigator {
namespace {

/// One navigator over a small synthetic dataset, estimator trained on
/// two augmentation graphs (fast but real end-to-end preparation).
class NavigatorFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph::SyntheticSpec spec;
    spec.name = "nav-unit";
    spec.num_nodes = 900;
    spec.num_classes = 5;
    spec.feature_dim = 16;
    spec.min_degree = 3;
    spec.max_degree = 90;
    spec.label_noise = 0.1;
    nav_ = new GNNavigator(graph::make_synthetic_dataset(spec, 21),
                           hw::make_profile("rtx4090"),
                           dse::BaseSettings{});
    std::vector<estimator::ProfiledRun> corpus;
    estimator::CollectorOptions opts;
    opts.configs_per_dataset = 14;
    opts.epochs = 1;
    for (int i = 0; i < 2; ++i) {
      const auto ds = graph::make_power_law_augmentation(i, 31);
      auto runs = estimator::collect_profiles(
          ds, nav_->hardware(), opts);
      corpus.insert(corpus.end(), runs.begin(), runs.end());
    }
    nav_->prepare(corpus);
  }
  static void TearDownTestSuite() { delete nav_; }
  static GNNavigator* nav_;
};

GNNavigator* NavigatorFixture::nav_ = nullptr;

TEST_F(NavigatorFixture, InputAnalysisProfilesDataset) {
  EXPECT_EQ(nav_->dataset().name, "nav-unit");
  EXPECT_GT(nav_->dataset_stats().profile.num_nodes, 0);
  EXPECT_GT(nav_->dataset_stats().coverage_at_50, 0.0);
  EXPECT_TRUE(nav_->is_prepared());
}

TEST_F(NavigatorFixture, GenerateGuidelineProducesValidConfig) {
  dse::RuntimeConstraints constraints;
  constraints.max_memory_gb = nav_->hardware().device.memory_gb;
  const Guideline g =
      nav_->generate_guideline(dse::targets_balance(), constraints);
  EXPECT_NO_THROW(g.config.validate());
  EXPECT_EQ(g.priority_name, "balance");
  EXPECT_GT(g.exploration_stats.leaves_evaluated, 100u);
  EXPECT_FALSE(g.text.empty());
  // guideline text parses back to the same configuration
  const auto parsed = runtime::TrainConfig::from_config_map(
      ConfigMap::parse(g.text));
  EXPECT_TRUE(parsed == g.config);
  EXPECT_GT(g.predicted.time_s, 0.0);
}

TEST_F(NavigatorFixture, PrioritiesShiftTheChosenGuideline) {
  dse::RuntimeConstraints constraints;
  const Guideline tm = nav_->generate_guideline(
      dse::targets_extreme_time_memory(), constraints);
  const Guideline ma = nav_->generate_guideline(
      dse::targets_extreme_memory_accuracy(), constraints);
  // Ex-TM's chosen candidate must predict no worse time than Ex-MA's and
  // Ex-MA must predict no worse accuracy than Ex-TM's.
  EXPECT_LE(tm.predicted.time_s, ma.predicted.time_s + 1e-9);
  EXPECT_GE(ma.predicted.accuracy, tm.predicted.accuracy - 1e-9);
}

TEST_F(NavigatorFixture, ConstraintsAreHonoredByPredictions) {
  dse::RuntimeConstraints tight;
  tight.max_memory_gb = 0.9;
  const Guideline g =
      nav_->generate_guideline(dse::targets_balance(), tight);
  EXPECT_LE(g.predicted.memory_gb, 0.9);
}

TEST_F(NavigatorFixture, ImpossibleConstraintsThrow) {
  dse::RuntimeConstraints impossible;
  impossible.max_memory_gb = 0.01;
  EXPECT_THROW(
      nav_->generate_guideline(dse::targets_balance(), impossible),
      Error);
}

TEST_F(NavigatorFixture, TrainExecutesGuideline) {
  dse::RuntimeConstraints constraints;
  const Guideline g =
      nav_->generate_guideline(dse::targets_balance(), constraints);
  const runtime::TrainReport r = nav_->train(g.config, /*epochs=*/2);
  EXPECT_GT(r.epoch_time_s, 0.0);
  EXPECT_GT(r.test_accuracy, 0.2);
}

TEST_F(NavigatorFixture, ReproduceRunsTemplatesWithPinnedModel) {
  const runtime::TrainReport r = nav_->reproduce("pagraph-full", 1);
  EXPECT_GT(r.cache_hit_rate, 0.2);
  EXPECT_THROW(nav_->reproduce("unknown-system", 1), Error);
}

TEST(GNNavigator, UnpreparedGuidelineGenerationThrows) {
  graph::SyntheticSpec spec;
  spec.num_nodes = 300;
  spec.min_degree = 2;
  spec.max_degree = 30;
  GNNavigator nav(graph::make_synthetic_dataset(spec, 3),
                  hw::make_profile("m90"), dse::BaseSettings{});
  EXPECT_FALSE(nav.is_prepared());
  EXPECT_THROW(
      nav.generate_guideline(dse::targets_balance(), {}), Error);
  EXPECT_THROW(nav.estimator(), Error);
  // but direct training works without preparation
  EXPECT_NO_THROW(nav.train(runtime::template_pyg(), 1));
}

}  // namespace
}  // namespace gnav::navigator
