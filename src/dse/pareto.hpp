// Pareto-front extraction over Perf{T, Γ, Acc} (minimize T and Γ,
// maximize Acc) — the optimality notion of the paper's decision maker.
#pragma once

#include <cstddef>
#include <vector>

namespace gnav::dse {

struct PerfPoint {
  double time_s = 0.0;
  double memory_gb = 0.0;
  double accuracy = 0.0;
};

/// True when `a` dominates `b`: no worse on every metric, strictly better
/// on at least one.
bool dominates(const PerfPoint& a, const PerfPoint& b);

/// Indices of the non-dominated subset, in input order.
std::vector<std::size_t> pareto_front(const std::vector<PerfPoint>& points);

/// 2-D projections used by Fig. 6: dominance restricted to two metrics.
enum class Plane { kTimeMemory, kMemoryAccuracy, kTimeAccuracy };
std::vector<std::size_t> pareto_front_2d(const std::vector<PerfPoint>& points,
                                         Plane plane);

}  // namespace gnav::dse
