// trace_demo — the smallest end-to-end telemetry round trip: a two-tenant
// JobScheduler drain (one async pipelined job and one sync job per
// tenant) recorded by the obs layer and exported as Chrome trace-event
// JSON + Prometheus text.
//
//   ./trace_demo [--trace-out trace_demo.json]
//                [--metrics-out metrics_demo.prom]
//
// Load the trace in Perfetto / chrome://tracing: the serve spans sit on
// the pool-worker tracks ("gnav-pool-N"), each async epoch's
// sample/transfer/compute spans on the named stage-thread tracks, and
// cache lookups nest inside the transfer spans. The TraceJsonStrict
// ctest runs this binary under tools/validate_trace.py and asserts
// exactly that structure (strict JSON, >= 3 categories, nested spans).
#include <cstdio>
#include <cstring>
#include <string>

#include "estimator/dataset_stats.hpp"
#include "estimator/perf_estimator.hpp"
#include "estimator/profile_collector.hpp"
#include "graph/dataset.hpp"
#include "hw/platform.hpp"
#include "obs/export.hpp"
#include "runtime/backend.hpp"
#include "runtime/templates.hpp"
#include "serve/job_scheduler.hpp"
#include "support/parallel.hpp"

using namespace gnav;

int main(int argc, char** argv) {
  std::string trace_path = "trace_demo.json";
  std::string metrics_path = "metrics_demo.prom";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--trace-out trace.json] "
                   "[--metrics-out metrics.prom]\n",
                   argv[0]);
      return 1;
    }
  }

  try {
    const obs::ExportScope telemetry(trace_path, metrics_path);

    graph::SyntheticSpec spec;
    spec.name = "trace-demo";
    spec.num_nodes = 600;
    spec.num_classes = 4;
    spec.feature_dim = 12;
    spec.min_degree = 3;
    spec.max_degree = 60;
    const graph::Dataset ds = graph::make_synthetic_dataset(spec, 5);
    const auto hw = hw::make_profile("rtx4090");
    runtime::RuntimeBackend backend(ds, hw);
    const estimator::DatasetStats stats =
        estimator::compute_dataset_stats(ds);
    // Admission pricing needs a fitted estimator; a small sync-only
    // corpus (Eq. 4 analytic overlap) is all a telemetry demo needs.
    estimator::CollectorOptions copts;
    copts.configs_per_dataset = 8;
    copts.epochs = 1;
    copts.seed = 31;
    estimator::PerfEstimator est(hw);
    est.fit(estimator::collect_profiles(ds, hw, copts));

    support::ThreadPool pool(2);
    serve::SchedulerOptions options;
    options.pool = &pool;
    options.max_active = 2;
    options.seed = 3;
    serve::JobScheduler sched(backend, est, stats, options);

    for (const char* tenant : {"tenant-a", "tenant-b"}) {
      serve::JobRequest async_req;
      async_req.tenant = tenant;
      async_req.config = runtime::template_pagraph_full();
      async_req.config.pipeline_overlap = true;
      async_req.config.batch_size = 128;
      async_req.epochs = 2;
      async_req.pipeline.mode = runtime::PipelineMode::kAsync;
      async_req.pipeline.prefetch_depth = 2;
      async_req.pipeline.sampler_workers = 2;
      sched.submit(async_req);

      serve::JobRequest sync_req;
      sync_req.tenant = tenant;
      sync_req.config = runtime::template_pyg();
      sync_req.config.batch_size = 128;
      sync_req.epochs = 1;
      sched.submit(sync_req);
    }

    const serve::DrainStats dstats = sched.drain();
    std::printf("drained %zu job(s): %zu completed, %zu failed, "
                "wall=%.2fs\n",
                dstats.started, dstats.completed, dstats.failed,
                dstats.wall_s);
    for (std::size_t id = 0; id < sched.size(); ++id) {
      const serve::JobOutcome& job = sched.outcome(id);
      std::printf("  job %zu [%s] %s wait=%.3fs run=%.3fs\n", job.id,
                  job.request.tenant.c_str(),
                  serve::to_string(job.state).c_str(), job.queue_wait_s,
                  job.run_s);
    }
    return dstats.failed == 0 ? 0 : 1;
    // ExportScope's destructor writes the trace and metrics files here.
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
