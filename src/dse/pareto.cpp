#include "dse/pareto.hpp"

namespace gnav::dse {
namespace {

/// Projects a point to (minimize, minimize) coordinates for a plane.
std::pair<double, double> project(const PerfPoint& p, Plane plane) {
  switch (plane) {
    case Plane::kTimeMemory:
      return {p.time_s, p.memory_gb};
    case Plane::kMemoryAccuracy:
      return {p.memory_gb, -p.accuracy};
    case Plane::kTimeAccuracy:
      return {p.time_s, -p.accuracy};
  }
  return {0.0, 0.0};
}

}  // namespace

bool dominates(const PerfPoint& a, const PerfPoint& b) {
  const bool no_worse = a.time_s <= b.time_s && a.memory_gb <= b.memory_gb &&
                        a.accuracy >= b.accuracy;
  const bool strictly_better = a.time_s < b.time_s ||
                               a.memory_gb < b.memory_gb ||
                               a.accuracy > b.accuracy;
  return no_worse && strictly_better;
}

std::vector<std::size_t> pareto_front(const std::vector<PerfPoint>& points) {
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < points.size() && !dominated; ++j) {
      if (j != i && dominates(points[j], points[i])) dominated = true;
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

std::vector<std::size_t> pareto_front_2d(const std::vector<PerfPoint>& points,
                                         Plane plane) {
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto [xi, yi] = project(points[i], plane);
    bool dominated = false;
    for (std::size_t j = 0; j < points.size() && !dominated; ++j) {
      if (j == i) continue;
      const auto [xj, yj] = project(points[j], plane);
      const bool no_worse = xj <= xi && yj <= yi;
      const bool strictly = xj < xi || yj < yi;
      if (no_worse && strictly) dominated = true;
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

}  // namespace gnav::dse
