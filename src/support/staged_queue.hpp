// Bounded MPMC hand-off queue for staged pipelines (the prefetch buffers
// between the epoch executor's sampler / transfer / compute stages, see
// runtime/pipeline.hpp). Push blocks while the queue is full — that is
// the backpressure that keeps at most `capacity` items in flight — and
// pop blocks while it is empty. `close()` ends the stream: pending and
// future pushes fail, pops drain whatever is buffered and then return
// nullopt.
//
// The queue additionally counts its own contention so the executor can
// report where an epoch's time went: a push that had to wait is a
// *backpressure stall* (downstream too slow), a pop that had to wait is a
// *starvation stall* (upstream too slow), and the backlog each push
// observed *before* its item lands integrates into a mean queue depth.
// Sampling pre-push matters: the just-pushed item must not count, or a
// never-backlogged queue would report a useless constant occupancy of 1
// and the auto-depth signal (ROADMAP) could not tell "always drained"
// from "always one deep".
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <optional>

#include "support/thread_safety.hpp"

namespace gnav::support {

struct StagedQueueStats {
  std::uint64_t pushes = 0;
  std::uint64_t pops = 0;
  /// Push calls that found the queue full and had to wait (backpressure).
  std::uint64_t push_stalls = 0;
  /// Pop calls that found the queue empty and had to wait (starvation).
  std::uint64_t pop_stalls = 0;
  /// Sum of the backlog each push observed immediately *before* its item
  /// landed (after any full-queue wait). Range per sample is
  /// [0, capacity-1]: 0 means the consumer had drained everything, so
  /// mean_occupancy() is 0 for a queue that was never backlogged and
  /// capacity-1 for one that was always full.
  double occupancy_sum = 0.0;

  double mean_occupancy() const {
    return pushes == 0 ? 0.0
                       : occupancy_sum / static_cast<double>(pushes);
  }
};

template <typename T>
class StagedQueue {
 public:
  /// `capacity` is clamped to >= 1 (a zero-capacity queue could never
  /// transfer an item).
  explicit StagedQueue(std::size_t capacity)
      : capacity_(std::max<std::size_t>(1, capacity)) {}

  StagedQueue(const StagedQueue&) = delete;
  StagedQueue& operator=(const StagedQueue&) = delete;

  std::size_t capacity() const { return capacity_; }

  /// Blocks while the queue is full. Returns false iff the queue was
  /// closed before the item could be enqueued (the item is dropped).
  bool push(T&& item) GNAV_EXCLUDES(mutex_) {
    UniqueLock lock(mutex_);
    if (items_.size() >= capacity_ && !closed_) {
      ++stats_.push_stalls;
      while (items_.size() >= capacity_ && !closed_) lock.wait(not_full_);
    }
    if (closed_) return false;
    // Pre-push occupancy sample: the backlog this producer found, not
    // counting the item it is about to add.
    stats_.occupancy_sum += static_cast<double>(items_.size());
    items_.push_back(std::move(item));
    ++stats_.pushes;
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while the queue is empty. Returns nullopt iff the queue is
  /// closed and fully drained.
  std::optional<T> pop() GNAV_EXCLUDES(mutex_) {
    UniqueLock lock(mutex_);
    if (items_.empty() && !closed_) {
      ++stats_.pop_stalls;
      while (items_.empty() && !closed_) lock.wait(not_empty_);
    }
    if (items_.empty()) return std::nullopt;  // closed && drained
    std::optional<T> out(std::move(items_.front()));
    items_.pop_front();
    ++stats_.pops;
    lock.unlock();
    not_full_.notify_one();
    return out;
  }

  /// Ends the stream: wakes every waiter; subsequent pushes fail, pops
  /// drain the buffered items. Idempotent.
  void close() GNAV_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const GNAV_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return closed_;
  }

  std::size_t size() const GNAV_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return items_.size();
  }

  StagedQueueStats stats() const GNAV_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return stats_;
  }

 private:
  const std::size_t capacity_;
  mutable Mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_ GNAV_GUARDED_BY(mutex_);
  StagedQueueStats stats_ GNAV_GUARDED_BY(mutex_);
  bool closed_ GNAV_GUARDED_BY(mutex_) = false;
};

}  // namespace gnav::support
