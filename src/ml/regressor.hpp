// Black-box regressors for the gray-box performance estimator.
//
// The paper's estimator learns the residual functions f_sample,
// f_transfer, f_replace, f_compute, f_overlapping, f_accuracy from
// profiled training runs (Sec. 3.3), and its Fig. 5 baseline is a plain
// decision-tree regression. Everything here is implemented from scratch —
// no external ML dependency — and is deterministic given the seed.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace gnav::ml {

/// Row-major design matrix: samples[i] is one feature vector.
using Matrix = std::vector<std::vector<double>>;

class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Fits on X (n x d) and targets y (n). Throws on shape mismatch.
  virtual void fit(const Matrix& x, const std::vector<double>& y) = 0;

  virtual double predict_one(const std::vector<double>& x) const = 0;

  std::vector<double> predict(const Matrix& x) const;

  virtual bool is_fitted() const = 0;
};

/// Deterministic train/test split by shuffled index (seeded).
void train_test_split(const Matrix& x, const std::vector<double>& y,
                      double test_fraction, std::uint64_t seed, Matrix* x_tr,
                      std::vector<double>* y_tr, Matrix* x_te,
                      std::vector<double>* y_te);

}  // namespace gnav::ml
