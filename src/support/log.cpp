#include "support/log.hpp"

#include <atomic>
#include <cstdio>
#include <utility>

#include "support/thread_safety.hpp"

namespace gnav {
namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?";
}

/// Sink storage. `mu` guards the sink object itself (swap vs. copy);
/// `emit_mu` guards no data at all — it only serializes delivery so
/// lines from thread-pool workers never interleave mid-line. The two
/// are separate on purpose: user sink code must never run under the
/// mutex that set_log_sink() needs, or a sink that installs/clears a
/// sink (or any callback re-entering the logger) self-deadlocks — the
/// same lock-held-reentry class as the BackendFactory creator.
struct LoggerState {
  support::Mutex mu;
  support::Mutex emit_mu;
  LogSink sink GNAV_GUARDED_BY(mu);  // null = stderr default
};

LoggerState& logger_state() {
  static LoggerState state;
  return state;
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void set_log_sink(LogSink sink) {
  LoggerState& state = logger_state();
  const support::MutexLock lock(state.mu);
  state.sink = std::move(sink);
}

namespace detail {
void log_emit(LogLevel level, const std::string& msg) {
  LoggerState& state = logger_state();
  // A sink that itself logs would re-acquire emit_mu on this thread;
  // route the nested emit straight to stderr instead of deadlocking.
  static thread_local bool t_in_emit = false;
  if (t_in_emit) {
    std::fprintf(stderr, "[gnav %s] %s\n", level_tag(level), msg.c_str());
    return;
  }
  LogSink sink;
  {
    // Copy the sink out so user code never runs under state.mu: the
    // copied std::function keeps the callable alive even if another
    // thread (or the sink itself) swaps the sink mid-call.
    const support::MutexLock lock(state.mu);
    sink = state.sink;
  }
  const support::MutexLock emit_lock(state.emit_mu);
  t_in_emit = true;
  struct ClearFlag {
    bool& flag;
    ~ClearFlag() { flag = false; }
  } clear{t_in_emit};
  if (sink) {
    // emit_mu guards no state — it only serializes delivery (the
    // no-tear contract). Same-thread re-entry short-circuits to stderr
    // above, and set_log_sink() takes only state.mu, so a sink may log
    // or swap sinks without deadlock.
    // gnav-analyzer(lock-held-reentry): emit_mu is delivery-only; re-entry is safe (see above).
    sink(level, msg);
    return;
  }
  std::fprintf(stderr, "[gnav %s] %s\n", level_tag(level), msg.c_str());
}
}  // namespace detail

}  // namespace gnav
