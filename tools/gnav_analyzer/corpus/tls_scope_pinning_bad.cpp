// Known-bad: std::thread bodies reach kernel code with no
// BackendScope/SpmmImplScope pinned first — fresh threads inherit no
// thread-local backend selection, so these silently compute on the
// factory default.
#include "gnav_stub.hpp"

namespace {
void churn(const float* x, float* y) { gnav::kernels::spmm(x, y, 64); }
}  // namespace

void unpinned_direct(const float* x, float* y) {
  std::thread worker([x, y] {
    gnav::kernels::spmm(x, y, 4);  // expect-finding(tls-scope-pinning)
  });
  worker.join();
}

void unpinned_transitive(const float* x, float* y) {
  std::thread worker([x, y] {
    churn(x, y);  // expect-finding(tls-scope-pinning)
  });
  worker.join();
}

void unpinned_emplace(std::vector<std::thread>& workers, const float* x,
                      float* y) {
  workers.emplace_back([x, y] {
    gnav::kernels::spmm(x, y, 4);  // expect-finding(tls-scope-pinning)
  });
}
