// Sparse neighborhood aggregation (the Aggregate of Eq. 1), expressed on
// top of the gnav::compute backend layer (compute/backend.hpp). Which
// backend executes — the scalar reference, the blocked cache-tiled CPU
// kernel, or the plan-caching hugepage-arena backend — is resolved per
// call from compute::current_backend(); every built-in CPU backend
// produces bit-identical results, so the choice is purely a throughput
// knob.
//
// All kernels assume the mini-batch graph has a *symmetric* edge set —
// samplers in this library always emit symmetrized subgraphs — which makes
// the GCN-normalized operator self-adjoint and lets mean aggregation use
// the same CSR for its transpose.
#pragma once

#include <vector>

#include "compute/backend.hpp"
#include "graph/csr_graph.hpp"
#include "kernels/spmm.hpp"
#include "tensor/tensor.hpp"

namespace gnav::nn {

/// Y[v] = mean over u in N(v) of X[u]; zero row when N(v) is empty.
tensor::Tensor aggregate_mean(const graph::CsrGraph& g,
                              const tensor::Tensor& x);

/// Transpose of aggregate_mean for backprop:
/// dX[u] = sum over v in N(u) of dY[v] / |N(v)|.
tensor::Tensor aggregate_mean_transpose(const graph::CsrGraph& g,
                                        const tensor::Tensor& dy);

/// GCN propagation with self-loops and symmetric normalization:
/// Y[v] = sum over u in N(v) ∪ {v} of X[u] / sqrt((d_v+1)(d_u+1)).
/// Self-adjoint on symmetric graphs, so it is its own transpose.
tensor::Tensor aggregate_gcn(const graph::CsrGraph& g,
                             const tensor::Tensor& x);

/// Y[v] = sum over u in N(v) of X[u] (plain sum aggregation).
tensor::Tensor aggregate_sum(const graph::CsrGraph& g,
                             const tensor::Tensor& x);

// Scale-vector builders and SpmmScales conventions now live in the
// compute layer (one definition shared by every backend's aggregate and
// the layers below); re-exported here because the nn layers cache them
// across forward/backward and historical call sites spell nn::.
using compute::gcn_norm_scales;
using compute::gcn_spmm_scales;
using compute::inverse_degree_scales;
using compute::mean_spmm_scales;
using compute::mean_transpose_spmm_scales;

/// FLOPs of one sparse aggregation pass over g with `cols` channels
/// (2 flops per edge per channel: multiply + accumulate).
double aggregation_flops(const graph::CsrGraph& g, std::size_t cols);

}  // namespace gnav::nn
