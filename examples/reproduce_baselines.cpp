// Reproducing existing systems by reconfiguration (paper Sec. 3.2): the
// unified backend reproduces PyG, PaGraph, 2PGraph, GraphSAINT and
// FastGCN purely through configuration templates — no code changes —
// and reports their Perf{T, Γ, Acc} side by side.
//
//   ./build/examples/reproduce_baselines [dataset] [epochs]
#include <cstdio>
#include <string>

#include "navigator/navigator.hpp"
#include "support/table.hpp"
#include "support/string_utils.hpp"

using namespace gnav;

int main(int argc, char** argv) {
  const std::string dataset_name = argc > 1 ? argv[1] : "reddit2";
  const int epochs = argc > 2 ? static_cast<int>(parse_int(argv[2])) : 4;

  graph::Dataset dataset = graph::load_dataset(dataset_name);
  hw::HardwareProfile gpu = hw::make_profile("rtx4090");
  dse::BaseSettings model;
  model.model = nn::ModelKind::kSage;
  model.num_layers = 2;
  navigator::GNNavigator nav(std::move(dataset), gpu, model);

  Table table({"system", "epoch time (s)", "peak mem (GB)", "test acc (%)",
               "cache hit (%)", "guideline"});
  for (const runtime::TrainConfig& tmpl : runtime::all_templates()) {
    const runtime::TrainReport r = nav.reproduce(tmpl.name, epochs);
    table.add_row({tmpl.name, format_double(r.epoch_time_s, 2),
                   format_double(r.peak_memory_gb, 2),
                   format_double(100.0 * r.test_accuracy, 2),
                   format_double(100.0 * r.cache_hit_rate, 1),
                   tmpl.summary()});
  }
  std::printf("baseline reproductions on %s (%d epochs):\n\n%s\n",
              dataset_name.c_str(), epochs, table.to_ascii().c_str());
  return 0;
}
