// End-to-end GNNavigator golden-trace regression.
//
// For two small registry datasets the full paper pipeline is executed —
// Step 1 profile a leave-one-out corpus, Step 2 fit the estimator /
// explore / decide, Step 3 train under the chosen guideline — and the
// chosen TrainConfig, the predicted Perf{T, Γ, Acc}, and the final-epoch
// training loss are asserted against checked-in golden values. Every
// stage is deterministic at any thread count (task_seed batching + the
// bit-identical SpMM kernel contract, see kernels/spmm.hpp and
// test_kernels.cpp), so drift here means behavior actually changed.
//
// Regenerating the goldens (after an INTENDED behavior change):
//
//   GNAV_REGEN_GOLDEN=1 ./build/test_golden_trace
//
// prints a ready-to-paste kGolden initializer (and skips the
// assertions); copy it over the table below and re-run. The continuous
// values are compared with a 1e-7 relative tolerance: loose enough for
// IEEE-identical codegen differences, tight enough that any semantic
// change trips it. A different C library (libm) can shift
// transcendentals by an ULP and cascade through training — regenerate on
// such a toolchain switch. See README "Golden traces".
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "compute/backend.hpp"
#include "dse/objectives.hpp"
#include "estimator/profile_collector.hpp"
#include "graph/dataset.hpp"
#include "hw/platform.hpp"
#include "navigator/navigator.hpp"
#include "runtime/backend.hpp"

namespace gnav {
namespace {

struct GoldenCase {
  const char* dataset;        // dataset under navigation
  const char* corpus_dataset; // leave-one-out partner the corpus profiles
  const char* config_text;    // chosen guideline, ConfigMap serialization
  double predicted_time_s;
  double predicted_memory_gb;
  double predicted_accuracy;
  double final_epoch_loss;    // train(config, 2 epochs, seed 1)
  /// Compute backend the whole trace executes under (filled by
  /// golden_cases(), not the table): goldens are keyed by backend id.
  /// The built-in CPU backends share one golden block because their
  /// bit-identity contract makes them interchangeable to the last bit —
  /// a future backend with a different accumulation order gets its own
  /// rows here, not a tolerance.
  const char* backend = compute::kBlockedBackendId;
};

// Checked-in goldens. Regenerate with GNAV_REGEN_GOLDEN=1 (see header).
const GoldenCase kGolden[] = {
    {"ogbn-arxiv", "reddit2",
     "batchsize = 256;\nbiasrate = 0.69999999999999996;\ncachepolicy = "
     "static;\ncacheratio = 0.10000000000000001;\ncompress = "
     "true;\ndropout = 0.30000001192092896;\nhiddendim = 64;\nhoplist = "
     "[-1];\nlr = 0.0099999997764825821;\nmodel = sage;\nname = "
     "gnav-balance;\nnumlayers = 2;\npipeline = true;\nreorder = "
     "false;\nsaintbudget = 8;\nsampler = cluster;\n",
     0.097745504476018444, 0.59698107322516636, 0.59442920180293468,
     1.9327334607860969},
    {"reddit2", "ogbn-arxiv",
     "batchsize = 512;\nbiasrate = 0;\ncachepolicy = none;\ncacheratio = "
     "0;\ncompress = true;\ndropout = 0.30000001192092896;\nhiddendim = "
     "64;\nhoplist = [-1];\nlr = 0.0099999997764825821;\nmodel = "
     "sage;\nname = gnav-balance;\nnumlayers = 2;\npipeline = "
     "true;\nreorder = false;\nsaintbudget = 8;\nsampler = cluster;\n",
     0.60345994773033074, 0.67563103608602271, 0.65761915855138842,
     1.4746742189646083},
};

/// The golden table × the production CPU backends. Every backend must
/// hit the SAME numbers — the per-backend bit-identity contract plus the
/// shared kernel accumulation order make the golden values backend-
/// invariant for the built-in ids (test_backend.cpp pins the pairwise
/// equality; this pins the absolute values per id end to end).
std::vector<GoldenCase> golden_cases() {
  std::vector<GoldenCase> out;
  for (const GoldenCase& base : kGolden) {
    for (const char* id :
         {compute::kBlockedBackendId, compute::kArenaBackendId}) {
      GoldenCase c = base;
      c.backend = id;
      out.push_back(c);
    }
  }
  return out;
}

struct TraceResult {
  std::string config_text;
  estimator::PerfPrediction predicted;
  double final_epoch_loss = 0.0;
};

TraceResult run_trace(const GoldenCase& c) {
  // Pin the case's backend for the entire pipeline: corpus collection,
  // estimator fit, exploration, and the final training run all execute
  // under it (RunOptions::backend_id defaults to the ambient scope).
  const compute::BackendScope backend_scope(std::string(c.backend));
  navigator::GNNavigator nav(graph::load_dataset(c.dataset),
                             hw::make_profile("rtx4090"),
                             dse::BaseSettings{});
  estimator::CollectorOptions opts;
  opts.configs_per_dataset = 8;
  opts.epochs = 1;
  std::vector<estimator::ProfiledRun> corpus;
  {
    const auto partner = graph::load_dataset(c.corpus_dataset);
    corpus = estimator::collect_profiles(partner, nav.hardware(), opts);
    const auto aug = graph::make_power_law_augmentation(0, 9);
    auto runs = estimator::collect_profiles(aug, nav.hardware(), opts);
    corpus.insert(corpus.end(), runs.begin(), runs.end());
  }
  nav.prepare(corpus);

  dse::RuntimeConstraints constraints;
  constraints.max_memory_gb = nav.hardware().device.memory_gb;
  const navigator::Guideline guideline =
      nav.generate_guideline(dse::targets_balance(), constraints);

  TraceResult result;
  result.config_text = guideline.config.to_config_map().to_guideline_text();
  result.predicted = guideline.predicted;
  const runtime::TrainReport report =
      nav.train(guideline.config, /*epochs=*/2, /*seed=*/1);
  result.final_epoch_loss = report.epoch_loss.back();
  return result;
}

void print_regen_block(const GoldenCase& c, const TraceResult& r) {
  // Escape the config text as a C++ string literal (newlines only; the
  // guideline syntax contains no quotes or backslashes).
  std::string escaped;
  for (char ch : r.config_text) {
    if (ch == '\n') {
      escaped += "\\n";
    } else {
      escaped += ch;
    }
  }
  std::printf("    {\"%s\", \"%s\",\n", c.dataset, c.corpus_dataset);
  std::printf("     \"%s\",\n", escaped.c_str());
  std::printf("     %.17g, %.17g, %.17g, %.17g},\n", r.predicted.time_s,
              r.predicted.memory_gb, r.predicted.accuracy,
              r.final_epoch_loss);
}

class GoldenTrace : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenTrace, PipelineMatchesCheckedInGolden) {
  const GoldenCase& c = GetParam();
  const TraceResult r = run_trace(c);
  if (std::getenv("GNAV_REGEN_GOLDEN") != nullptr) {
    // One paste block per dataset: the backend-crossed cases share their
    // golden values, so only the cpu-blocked instance prints.
    if (std::string(c.backend) == compute::kBlockedBackendId) {
      print_regen_block(c, r);
    }
    GTEST_SKIP() << "GNAV_REGEN_GOLDEN set: printed fresh goldens for "
                 << c.dataset << " instead of asserting";
  }
  EXPECT_EQ(r.config_text, c.config_text) << "chosen guideline drifted";
  const auto near = [](double expected, double actual) {
    return std::abs(actual - expected) <=
           1e-7 * std::max(1.0, std::abs(expected));
  };
  EXPECT_TRUE(near(c.predicted_time_s, r.predicted.time_s))
      << "predicted T: " << r.predicted.time_s << " vs golden "
      << c.predicted_time_s;
  EXPECT_TRUE(near(c.predicted_memory_gb, r.predicted.memory_gb))
      << "predicted mem: " << r.predicted.memory_gb << " vs golden "
      << c.predicted_memory_gb;
  EXPECT_TRUE(near(c.predicted_accuracy, r.predicted.accuracy))
      << "predicted acc: " << r.predicted.accuracy << " vs golden "
      << c.predicted_accuracy;
  EXPECT_TRUE(near(c.final_epoch_loss, r.final_epoch_loss))
      << "final-epoch loss: " << r.final_epoch_loss << " vs golden "
      << c.final_epoch_loss;
}

INSTANTIATE_TEST_SUITE_P(Registry, GoldenTrace,
                         ::testing::ValuesIn(golden_cases()),
                         [](const auto& info) {
                           std::string name = info.param.dataset;
                           name += "_";
                           name += info.param.backend;
                           for (char& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace gnav
