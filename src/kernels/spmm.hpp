// gnav::kernels — the sparse-aggregation kernel layer.
//
// Every GNN aggregation in this codebase (sum / mean / GCN-normalized /
// mean-transpose) is one weighted CSR SpMM:
//
//   Y[v] = dst_scale[v] * ( self_scale[v] * X[v]
//                           + sum_{u in N(v)} src_scale[u] * X[u] )
//
// with any of the three scale vectors optional. The layer ships two
// interchangeable implementations behind this single entry point:
//
//   kScalar  — the naive per-edge reference loop (one thread, row by row,
//              full feature width per neighbor). This is the semantic
//              ground truth the tests compare against.
//   kBlocked — the production kernel: feature-dim register tiling (each
//              output row accumulates in SIMD registers over 64/32-float
//              tiles and is written once per tile, instead of being
//              read-modify-written per edge), runtime ISA dispatch
//              (AVX2 → SSE2 → portable), degree binning that routes hub
//              rows through a single-pass streaming accumulator when the
//              feature dim needs multiple tiles, and an edge-balanced
//              fixed row partition executed on the thread pool with heavy
//              partitions scheduled first so power-law hub rows cannot
//              serialize a chunk.
//
// Determinism contract (enforced by test_kernels.cpp): for every (v, j)
// both implementations accumulate contributions in exactly the same order
// — self term first, then neighbors in CSR order, then the dst scale —
// so outputs are BIT-IDENTICAL between implementations and at any thread
// count. The golden-trace suite and the estimator corpus rely on this.
//
// Like nn/aggregate.hpp, the transpose-style uses (mean_transpose) assume
// the symmetric edge sets every sampler in this library emits.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "graph/csr_graph.hpp"
#include "tensor/tensor.hpp"

namespace gnav::support {
class ThreadPool;
}

namespace gnav::kernels {

enum class SpmmImpl {
  kScalar,
  kBlocked,
};

std::string to_string(SpmmImpl impl);
/// Parses "scalar" / "blocked"; throws gnav::Error on anything else.
SpmmImpl spmm_impl_from_string(const std::string& name);

/// Implementation the calling thread currently resolves to: the innermost
/// active SpmmImplScope on this thread, else kBlocked.
///
/// There is deliberately NO process-wide default slot behind this (the
/// old set_default_spmm_impl() is gone): implementation selection flows
/// through the compute::ComputeBackend layer, which pins the choice per
/// run — and per stage thread — so no concurrent job can bypass another's
/// pin by flipping a global. Backend-level selection lives in
/// compute::BackendFactory; this thread-local remains as the low-level
/// kernel A/B mechanism used by the backends themselves and the kernel
/// tests.
SpmmImpl current_spmm_impl();

/// RAII thread-local override, used by the runtime backend (RunOptions)
/// and the A/B benchmarks. Thread-local so concurrent backend runs on
/// pool workers cannot race each other's selection.
class SpmmImplScope {
 public:
  explicit SpmmImplScope(SpmmImpl impl);
  ~SpmmImplScope();
  SpmmImplScope(const SpmmImplScope&) = delete;
  SpmmImplScope& operator=(const SpmmImplScope&) = delete;

 private:
  SpmmImpl prev_;
  bool prev_active_;
};

/// SIMD tier of the blocked implementation. kAuto resolves to the widest
/// ISA the CPU supports (AVX2 on most x86-64, SSE2 otherwise, portable
/// C++ elsewhere). The lower tiers exist so tests can prove every code
/// path bit-identical on whatever machine they run on — all tiers
/// produce identical bits by construction.
enum class SpmmSimdTier {
  kPortable,
  kSse,
  kAuto,
};

/// Process-wide cap on the blocked kernel's SIMD tier (testing and
/// diagnostics; kAuto is the production default). Tiers above what the
/// CPU supports clamp down.
void set_spmm_simd_tier(SpmmSimdTier tier);
SpmmSimdTier spmm_simd_tier();

/// ISA the blocked kernel actually dispatches to on this host under the
/// current tier cap: "avx2" | "sse2" | "portable". Diagnostics only —
/// never feed it into estimator features or golden traces (it varies by
/// host; all tiers produce identical bits anyway).
std::string active_spmm_isa();

/// Reusable blocked-execution plan for one graph: the edge-balanced row
/// partition (chunk c covers rows [bounds[c], bounds[c+1])) plus the
/// heavy-first chunk schedule. A pure function of the graph — never of
/// the thread count or feature dim — so a cached plan is bit-identical
/// to a freshly built one and can be shared across calls and threads.
/// The batched compute backends cache plans per graph uid to amortize
/// the O(V) build across repeated SpMMs on the same graph.
struct SpmmPlan {
  std::vector<graph::NodeId> bounds;
  std::vector<std::size_t> order;
};

SpmmPlan make_spmm_plan(const graph::CsrGraph& g);

/// Optional per-vertex scale vectors (length num_nodes each, or null):
///   src_scale  — weight applied to each gathered neighbor row,
///   dst_scale  — post-sum scale of the output row,
///   self_scale — adds self_scale[v] * X[v] before the neighbor sum.
struct SpmmScales {
  const float* src_scale = nullptr;
  const float* dst_scale = nullptr;
  const float* self_scale = nullptr;
};

/// Y = weighted-SpMM(g, X). `y` must have X's shape and is overwritten;
/// it must not alias `x`. `pool` is used only by kBlocked (null selects
/// the global pool; inside a pool worker the kernel runs inline).
/// `plan`, when non-null, must be make_spmm_plan(g) for this exact graph
/// (kBlocked only; kScalar ignores it) — passing a cached plan skips the
/// per-call partition build without changing a single output bit.
void spmm(const graph::CsrGraph& g, const tensor::Tensor& x,
          tensor::Tensor& y, const SpmmScales& scales, SpmmImpl impl,
          support::ThreadPool* pool = nullptr,
          const SpmmPlan* plan = nullptr);

/// Allocating convenience using current_spmm_impl().
tensor::Tensor spmm(const graph::CsrGraph& g, const tensor::Tensor& x,
                    const SpmmScales& scales,
                    support::ThreadPool* pool = nullptr);

}  // namespace gnav::kernels
