#include <algorithm>

#include "sampling/build.hpp"
#include "sampling/sample_scratch.hpp"
#include "sampling/sampler.hpp"
#include "support/error.hpp"

namespace gnav::sampling {

std::string to_string(SamplerKind kind) {
  switch (kind) {
    case SamplerKind::kNodeWise:
      return "sage";
    case SamplerKind::kLayerWise:
      return "fastgcn";
    case SamplerKind::kSaintWalk:
      return "saint_walk";
    case SamplerKind::kSaintNode:
      return "saint_node";
    case SamplerKind::kSaintEdge:
      return "saint_edge";
    case SamplerKind::kCluster:
      return "cluster";
  }
  return "?";
}

SamplerKind sampler_kind_from_string(const std::string& s) {
  if (s == "sage") return SamplerKind::kNodeWise;
  if (s == "fastgcn") return SamplerKind::kLayerWise;
  if (s == "saint_walk") return SamplerKind::kSaintWalk;
  if (s == "saint_node") return SamplerKind::kSaintNode;
  if (s == "saint_edge") return SamplerKind::kSaintEdge;
  if (s == "cluster") return SamplerKind::kCluster;
  throw Error("unknown sampler kind '" + s + "'");
}

NodeWiseSampler::NodeWiseSampler(std::vector<int> hops, SamplingBias bias)
    : hops_(std::move(hops)), bias_(bias) {
  GNAV_CHECK(!hops_.empty(), "hop list must be non-empty");
  for (int k : hops_) {
    GNAV_CHECK(k == -1 || k >= 1, "fanout must be -1 (full) or >= 1");
  }
}

namespace {

/// Samples up to `k` distinct neighbors of `v`, honoring the bias weights.
/// k == -1 keeps the whole neighborhood. Appends picked vertices to `out`
/// and sampled (v,u) edges to `edges`; returns candidate-scan work.
double fanout_one(const graph::CsrGraph& g, graph::NodeId v, int k,
                  const SamplingBias& bias, Rng& rng, SampleScratch& sc,
                  std::vector<graph::NodeId>& out,
                  std::vector<std::pair<graph::NodeId, graph::NodeId>>& edges) {
  const auto nb = g.neighbors(v);
  if (nb.empty()) return 0.0;
  const auto deg = static_cast<std::int64_t>(nb.size());
  if (k == -1 || deg <= k) {
    if (bias.active()) {
      // Locality-aware samplers (2PGraph, BGL) keep every resident
      // neighbor but probabilistically drop non-resident ones — that is
      // where their transfer savings (and accuracy cost) come from.
      const double keep_prob = 1.0 - 0.75 * bias.bias_rate;
      for (graph::NodeId u : nb) {
        const bool resident =
            (*bias.preference)[static_cast<std::size_t>(u)] != 0;
        if (resident || rng.bernoulli(keep_prob)) {
          out.push_back(u);
          edges.emplace_back(v, u);
        }
      }
      return static_cast<double>(deg);
    }
    for (graph::NodeId u : nb) {
      out.push_back(u);
      edges.emplace_back(v, u);
    }
    return static_cast<double>(deg);
  }
  if (!bias.active()) {
    // Uniform k-of-deg without replacement.
    const auto picks = rng.sample_without_replacement(deg, k);
    for (std::int64_t idx : picks) {
      const graph::NodeId u = nb[static_cast<std::size_t>(idx)];
      out.push_back(u);
      edges.emplace_back(v, u);
    }
    return static_cast<double>(k);
  }
  // Biased sampling without replacement: the two-valued bias weights need
  // no cumulative array — split the neighborhood into preferred/rest once,
  // then draw in O(1) with stamped-marker rejection of duplicates
  // (k << deg in practice).
  const TwoGroupDraw draw(nb, *bias.preference, bias.weight_preferred(),
                          1.0, sc.pref_idx, sc.rest_idx);
  sc.chosen.begin_pass(nb.size());
  int picked = 0;
  int attempts = 0;
  const int max_attempts = k * 20;
  while (picked < k && attempts < max_attempts) {
    ++attempts;
    const std::size_t idx = draw.sample(rng);
    if (sc.chosen.insert(static_cast<std::int64_t>(idx))) {
      ++picked;
      out.push_back(nb[idx]);
      edges.emplace_back(v, nb[idx]);
    }
  }
  return static_cast<double>(attempts);
}

}  // namespace

MiniBatch NodeWiseSampler::sample(const graph::CsrGraph& g,
                                  std::span<const graph::NodeId> seeds,
                                  Rng& rng) const {
  GNAV_CHECK(!seeds.empty(), "cannot sample from an empty seed set");
  SampleScratch& sc = SampleScratch::local();
  sc.visited.begin_pass(static_cast<std::size_t>(g.num_nodes()));
  sc.frontier.assign(seeds.begin(), seeds.end());
  sc.collected.clear();
  sc.edges.clear();
  for (graph::NodeId s : seeds) sc.visited.insert(s);
  double work = static_cast<double>(seeds.size());

  for (int k : hops_) {
    sc.next_frontier.clear();
    for (graph::NodeId v : sc.frontier) {
      sc.picked.clear();
      work += fanout_one(g, v, k, bias_, rng, sc, sc.picked, sc.edges);
      for (graph::NodeId u : sc.picked) {
        sc.collected.push_back(u);
        if (sc.visited.insert(u)) sc.next_frontier.push_back(u);
      }
    }
    std::swap(sc.frontier, sc.next_frontier);
    if (sc.frontier.empty()) break;
  }

  // order_nodes re-derives the dedup in first-seen order (seeds first);
  // sc.visited is re-stamped inside, so the hop bookkeeping above cannot
  // leak into it.
  const auto& ordered = detail::order_nodes(g, seeds, sc.collected, sc);
  return detail::build_from_edges(g, seeds, ordered, sc.edges, work, sc);
}

}  // namespace gnav::sampling
