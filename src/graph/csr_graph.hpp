// Compressed sparse row (CSR) graph — the fundamental data structure every
// other GNNavigator subsystem (sampling, caching, training) operates on.
//
// Vertices are dense 0-based NodeId values. The graph is stored as a
// directed adjacency structure; undirected graphs are represented by
// symmetrized edge sets (both directions present), which matches how PyG
// and DGL feed message-passing layers.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace gnav::graph {

using NodeId = std::int64_t;
using EdgeId = std::int64_t;

/// Immutable CSR adjacency structure.
class CsrGraph {
 public:
  CsrGraph() = default;

  /// Takes ownership of validated CSR arrays. `indptr` has num_nodes + 1
  /// monotone entries; `indices[indptr[v] .. indptr[v+1])` are v's
  /// out-neighbors. Throws gnav::Error on malformed input.
  CsrGraph(std::vector<EdgeId> indptr, std::vector<NodeId> indices);

  // Copies are distinct graphs (fresh uid); moves transfer identity and
  // re-identify the hollowed-out source, so a uid never names two live
  // adjacency structures at once.
  CsrGraph(const CsrGraph& other)
      : indptr_(other.indptr_), indices_(other.indices_) {}
  CsrGraph& operator=(const CsrGraph& other) {
    indptr_ = other.indptr_;
    indices_ = other.indices_;
    uid_ = next_uid();
    return *this;
  }
  CsrGraph(CsrGraph&& other) noexcept
      : indptr_(std::move(other.indptr_)),
        indices_(std::move(other.indices_)),
        uid_(other.uid_) {
    other.uid_ = next_uid();
  }
  CsrGraph& operator=(CsrGraph&& other) noexcept {
    indptr_ = std::move(other.indptr_);
    indices_ = std::move(other.indices_);
    uid_ = other.uid_;
    other.uid_ = next_uid();
    return *this;
  }

  /// Process-unique identity of this adjacency structure, assigned at
  /// construction. Compute backends key cached per-graph execution plans
  /// on it (see compute::ComputeBackend), which a raw `this` pointer
  /// could not do safely: allocators recycle addresses across the
  /// short-lived mini-batch subgraphs.
  std::uint64_t uid() const { return uid_; }

  NodeId num_nodes() const {
    return indptr_.empty() ? 0 : static_cast<NodeId>(indptr_.size()) - 1;
  }
  EdgeId num_edges() const { return indptr_.empty() ? 0 : indptr_.back(); }

  /// Out-degree of vertex v.
  EdgeId degree(NodeId v) const { return indptr_[static_cast<std::size_t>(v) + 1] - indptr_[static_cast<std::size_t>(v)]; }

  /// Neighbor list of vertex v as a non-owning view.
  std::span<const NodeId> neighbors(NodeId v) const {
    const auto b = static_cast<std::size_t>(indptr_[static_cast<std::size_t>(v)]);
    const auto e = static_cast<std::size_t>(indptr_[static_cast<std::size_t>(v) + 1]);
    return {indices_.data() + b, e - b};
  }

  const std::vector<EdgeId>& indptr() const { return indptr_; }
  const std::vector<NodeId>& indices() const { return indices_; }

  /// Degrees of all vertices (convenience for profiling).
  std::vector<std::size_t> degrees() const;

  /// Average out-degree; 0 for the empty graph.
  double average_degree() const;

  /// True when every edge (u,v) has a reverse edge (v,u). O(E log d).
  bool is_symmetric() const;

  /// True if `v` is a valid vertex id.
  bool contains(NodeId v) const { return v >= 0 && v < num_nodes(); }

  /// Approximate resident bytes of the CSR arrays.
  std::size_t memory_bytes() const {
    return indptr_.size() * sizeof(EdgeId) + indices_.size() * sizeof(NodeId);
  }

 private:
  static std::uint64_t next_uid();

  std::vector<EdgeId> indptr_;
  std::vector<NodeId> indices_;
  std::uint64_t uid_ = next_uid();
};

}  // namespace gnav::graph
