// Ablation — DFS exploration with constraint pruning vs exhaustive
// enumeration (the paper motivates pruning as what makes automatic
// exploration low-overhead). Reports candidates visited/evaluated/pruned,
// wall time, and verifies both explorers pick equally-good guidelines.
#include <chrono>
#include <cstdio>

#include "dse/decision_maker.hpp"
#include "dse/design_space.hpp"
#include "dse/explorer.hpp"
#include "estimator/profile_collector.hpp"
#include "support/string_utils.hpp"
#include "support/table.hpp"

using namespace gnav;

namespace {
double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}
}  // namespace

int main() {
  const auto hw = hw::make_profile("rtx4090");
  const auto ds = graph::load_dataset("reddit2");
  const auto stats = estimator::compute_dataset_stats(ds);

  std::printf("fitting estimator on a profiled corpus...\n");
  estimator::CollectorOptions opts;
  opts.configs_per_dataset = 16;
  opts.epochs = 1;
  estimator::PerfEstimator est(hw);
  est.fit(estimator::collect_profiles(ds, hw, opts));

  const dse::DesignSpace space = dse::DesignSpace::full(dse::BaseSettings{});
  const dse::Explorer explorer(space, est, stats);

  Table table({"constraint (max mem GB)", "strategy", "leaves evaluated",
               "subtrees pruned", "feasible", "wall (ms)",
               "chosen score"});
  const dse::DecisionMaker maker(dse::targets_balance());

  for (double budget : {0.0, 1.2, 0.9, 0.8}) {
    dse::RuntimeConstraints constraints;
    constraints.max_memory_gb = budget;
    const std::string tag =
        budget == 0.0 ? "none" : format_double(budget, 1);

    auto start = std::chrono::steady_clock::now();
    const auto dfs = explorer.explore(constraints, {});
    const double dfs_ms = 1000.0 * seconds_since(start);

    start = std::chrono::steady_clock::now();
    const auto full = explorer.explore_exhaustive(constraints);
    const double full_ms = 1000.0 * seconds_since(start);

    auto score_of = [&](const dse::ExplorationResult& r) {
      if (r.feasible.empty()) return std::string("n/a");
      return format_double(maker.decide(r).score, 4);
    };
    table.add_row({tag, "DFS + pruning",
                   std::to_string(dfs.stats.leaves_evaluated),
                   std::to_string(dfs.stats.subtrees_pruned),
                   std::to_string(dfs.stats.feasible),
                   format_double(dfs_ms, 1), score_of(dfs)});
    table.add_row({tag, "exhaustive",
                   std::to_string(full.stats.leaves_evaluated), "0",
                   std::to_string(full.stats.feasible),
                   format_double(full_ms, 1), score_of(full)});
  }
  std::printf("\nDSE ablation — pruning saves estimator evaluations without"
              " changing the decision:\n\n%s\n", table.to_ascii().c_str());
  table.write_csv("ablation_dse.csv");
  return 0;
}
