// Partitions the training vertex set into per-iteration seed batches B_0^i
// (Algo. 1 line 1). A fresh shuffle per epoch reproduces PyG's
// NeighborLoader(shuffle=True) behavior.
//
// `MiniBatchLoader` is the parallel front half of the training loop: it
// expands seed batches into mini-batch subgraphs on the thread pool,
// keeping a bounded prefetch window in flight so workers build batch
// i+1..i+w while the (inherently serial) train step consumes batch i —
// PyG num_workers-style. One deterministic RNG per batch index makes the
// stream bit-identical at any thread count.
#pragma once

#include <cstdint>
#include <deque>
#include <future>
#include <vector>

#include "graph/csr_graph.hpp"
#include "sampling/sampler.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace gnav::sampling {

class SeedBatcher {
 public:
  SeedBatcher(std::vector<graph::NodeId> train_nodes,
              std::size_t batch_size);

  /// Number of mini-batches per epoch: ceil(|train| / batch_size)
  /// (the n_iter of Eq. 4).
  std::size_t batches_per_epoch() const;

  /// Reshuffles and returns the seed batches for one epoch.
  std::vector<std::vector<graph::NodeId>> epoch_batches(Rng& rng);

  std::size_t batch_size() const { return batch_size_; }
  std::size_t num_train_nodes() const { return train_nodes_.size(); }

 private:
  std::vector<graph::NodeId> train_nodes_;
  std::size_t batch_size_;
};

/// Streams the epoch's mini-batches in order while up to `window` of them
/// build concurrently on `pool`. Batch i draws from
/// Rng(task_seed(epoch_seed, i)), so the stream does not depend on thread
/// count or scheduling order. The sampler must be bias-free (cache-aware
/// bias couples consecutive batches through device-cache residency and
/// needs the serial path). The referenced sampler, graph, and seed
/// batches must outlive the loader; the destructor drains outstanding
/// builds.
class MiniBatchLoader {
 public:
  MiniBatchLoader(const Sampler& sampler, const graph::CsrGraph& g,
                  const std::vector<std::vector<graph::NodeId>>& seed_batches,
                  std::uint64_t epoch_seed, support::ThreadPool& pool,
                  std::size_t window);
  ~MiniBatchLoader();

  MiniBatchLoader(const MiniBatchLoader&) = delete;
  MiniBatchLoader& operator=(const MiniBatchLoader&) = delete;

  bool done() const { return pending_.empty(); }

  /// Next mini-batch in seed-batch order (blocks on its build if needed;
  /// rethrows the build's exception). Tops the prefetch window back up.
  MiniBatch next();

  /// Total real seconds `next()` spent blocked waiting on in-flight
  /// builds — the consumer-visible cost of the sampling stage (the
  /// builds themselves run overlapped on the pool). The runtime backend
  /// reports this as the synchronous executor's sample wall time.
  double wait_s() const { return wait_s_; }

 private:
  void top_up();

  const Sampler* sampler_;
  const graph::CsrGraph* graph_;
  const std::vector<std::vector<graph::NodeId>>* seed_batches_;
  std::uint64_t epoch_seed_;
  support::ThreadPool* pool_;
  std::size_t window_;
  std::size_t next_index_ = 0;
  double wait_s_ = 0.0;
  std::deque<std::future<MiniBatch>> pending_;
};

}  // namespace gnav::sampling
