// Tests for the synthetic graph generators and the dataset registry,
// including parameterized property sweeps over generator settings.
#include <gtest/gtest.h>

#include "graph/dataset.hpp"
#include "graph/generators.hpp"
#include "graph/graph_stats.hpp"
#include "support/error.hpp"

namespace gnav::graph {
namespace {

TEST(ErdosRenyi, EdgeCountNearExpectation) {
  Rng rng(1);
  const NodeId n = 400;
  const double p = 0.02;
  const CsrGraph g = erdos_renyi(n, p, rng);
  const double expected = p * n * (n - 1);  // directed count, symmetrized
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, expected * 0.25);
  EXPECT_TRUE(g.is_symmetric());
}

TEST(ErdosRenyi, EdgeCases) {
  Rng rng(2);
  EXPECT_EQ(erdos_renyi(100, 0.0, rng).num_edges(), 0);
  const CsrGraph full = erdos_renyi(20, 1.0, rng);
  EXPECT_EQ(full.num_edges(), 20 * 19);
  EXPECT_THROW(erdos_renyi(10, 1.5, rng), Error);
}

TEST(BarabasiAlbert, PowerLawTail) {
  Rng rng(3);
  const CsrGraph g = barabasi_albert(2000, 3, rng);
  EXPECT_TRUE(g.is_symmetric());
  const GraphProfile p = profile_graph(g);
  // Preferential attachment: strong skew, hub far above average.
  EXPECT_GT(p.degree_gini, 0.3);
  EXPECT_GT(static_cast<double>(p.max_degree), 6.0 * p.avg_degree);
  // every non-seed vertex attaches to m=3 distinct targets
  for (NodeId v = 4; v < g.num_nodes(); ++v) {
    EXPECT_GE(g.degree(v), 3);
  }
}

TEST(PowerLawConfiguration, RespectsDegreeBounds) {
  Rng rng(4);
  const CsrGraph g = power_law_configuration(1500, 2.3, 3, 120, rng);
  EXPECT_TRUE(g.is_symmetric());
  const auto degs = g.degrees();
  std::size_t max_deg = 0;
  for (auto d : degs) max_deg = std::max(max_deg, d);
  // Dedup can only remove edges, never add.
  EXPECT_LE(max_deg, 120u);
  const GraphProfile p = profile_graph(g);
  EXPECT_GT(p.power_law_alpha, 1.5);
  EXPECT_LT(p.power_law_alpha, 4.0);
}

TEST(PowerLawConfiguration, RealizedDegreeTracksDrawnDegree) {
  // Small n + heavy skew maximizes stub collisions (self-pairs and
  // multi-edges). The rejection pool's single resample pass must keep the
  // realized degree mass within a few percent of the drawn mass — the
  // old discard-only matching lost noticeably more here. num_edges() on
  // the symmetrized CSR counts directed entries, i.e. matched stubs.
  for (const std::uint64_t seed : {10u, 11u, 12u}) {
    Rng rng(seed);
    std::size_t drawn = 0;
    const CsrGraph g = power_law_configuration(250, 2.0, 2, 60, rng, &drawn);
    ASSERT_GT(drawn, 0u);
    const double ratio =
        static_cast<double>(g.num_edges()) / static_cast<double>(drawn);
    // Discard-only matching lands at 0.90-0.94 on this setting; the
    // resample pass reaches 0.955+. 0.95 separates the two regimes.
    EXPECT_GE(ratio, 0.95) << "seed " << seed << " drawn " << drawn
                           << " realized " << g.num_edges();
    // The odd-stub pad can add at most one stub beyond the drawn mass.
    EXPECT_LE(static_cast<double>(g.num_edges()),
              static_cast<double>(drawn) + 1.0)
        << "seed " << seed;
  }
}

TEST(Rmat, SkewedAndWellFormed) {
  Rng rng(5);
  const CsrGraph g = rmat(10, 8.0, 0.57, 0.19, 0.19, rng);
  EXPECT_EQ(g.num_nodes(), 1024);
  EXPECT_TRUE(g.is_symmetric());
  EXPECT_GT(profile_graph(g).degree_gini, 0.3);
  EXPECT_THROW(rmat(10, 8.0, 0.5, 0.3, 0.3, rng), Error);
}

TEST(PlantedPartition, IntraBlockDenser) {
  Rng rng(6);
  std::vector<int> blocks;
  const CsrGraph g = planted_partition(200, 4, 0.2, 0.01, rng, &blocks);
  ASSERT_EQ(blocks.size(), 200u);
  std::size_t intra = 0;
  std::size_t inter = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (NodeId u : g.neighbors(v)) {
      if (blocks[static_cast<std::size_t>(v)] ==
          blocks[static_cast<std::size_t>(u)]) {
        ++intra;
      } else {
        ++inter;
      }
    }
  }
  // p_in/p_out = 20, but inter pairs are 3x more numerous -> expect >4x.
  EXPECT_GT(intra, 4 * inter);
}

struct CommunityGraphParams {
  double exponent;
  double rewire;
};

class CommunityGraphSweep
    : public ::testing::TestWithParam<CommunityGraphParams> {};

TEST_P(CommunityGraphSweep, ProducesSkewedCommunityGraphs) {
  const auto param = GetParam();
  Rng rng(7);
  std::vector<int> blocks;
  const CsrGraph g = power_law_community_graph(
      1200, 6, param.exponent, 3, 100, param.rewire, rng, &blocks);
  EXPECT_TRUE(g.is_symmetric());
  EXPECT_EQ(blocks.size(), 1200u);
  // Higher rewire probability -> higher intra-community edge fraction.
  std::size_t intra = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (NodeId u : g.neighbors(v)) {
      intra += blocks[static_cast<std::size_t>(v)] ==
               blocks[static_cast<std::size_t>(u)];
    }
  }
  const double frac =
      static_cast<double>(intra) / static_cast<double>(g.num_edges());
  // At rewire=0 only the 1/6 random baseline; grows with rewire.
  EXPECT_GT(frac, param.rewire * 0.6);
  EXPECT_GT(profile_graph(g).degree_gini, 0.15);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CommunityGraphSweep,
    ::testing::Values(CommunityGraphParams{2.0, 0.5},
                      CommunityGraphParams{2.3, 0.7},
                      CommunityGraphParams{2.6, 0.8},
                      CommunityGraphParams{2.1, 0.9}));

TEST(Dataset, RegistryProducesConsistentDatasets) {
  for (const std::string& name : dataset_names()) {
    const Dataset ds = load_dataset(name);
    EXPECT_EQ(ds.name, name);
    EXPECT_NO_THROW(ds.validate());
    EXPECT_GT(ds.num_nodes(), 1000);
    EXPECT_GE(ds.num_classes, 2);
    EXPECT_FALSE(ds.train_nodes.empty());
    EXPECT_FALSE(ds.test_nodes.empty());
    EXPECT_GT(ds.real_scale_factor, 1.0);
  }
  EXPECT_THROW(load_dataset("no-such-dataset"), Error);
}

TEST(Dataset, DeterministicInSeed) {
  const Dataset a = load_dataset("ogbn-arxiv", 7);
  const Dataset b = load_dataset("ogbn-arxiv", 7);
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.features, b.features);
  const Dataset c = load_dataset("ogbn-arxiv", 8);
  EXPECT_NE(a.features, c.features);
}

TEST(Dataset, SplitsPartitionVertexSet) {
  const Dataset ds = load_dataset("reddit2");
  EXPECT_EQ(ds.train_nodes.size() + ds.val_nodes.size() +
                ds.test_nodes.size(),
            static_cast<std::size_t>(ds.num_nodes()));
}

TEST(Dataset, CodesMatchPaperAbbreviations) {
  EXPECT_EQ(dataset_code("ogbn-arxiv"), "AR");
  EXPECT_EQ(dataset_code("ogbn-products"), "PR");
  EXPECT_EQ(dataset_code("reddit"), "RD");
  EXPECT_EQ(dataset_code("reddit2"), "RD2");
}

TEST(Dataset, FeaturesCarryClassSignal) {
  // Mean intra-class feature distance should be below inter-class
  // distance — otherwise no model could learn anything.
  const Dataset ds = load_dataset("ogbn-products");
  const auto d = static_cast<std::size_t>(ds.feature_dim);
  std::vector<std::vector<double>> class_mean(
      static_cast<std::size_t>(ds.num_classes),
      std::vector<double>(d, 0.0));
  std::vector<std::size_t> counts(static_cast<std::size_t>(ds.num_classes));
  for (NodeId v = 0; v < ds.num_nodes(); ++v) {
    const auto c = static_cast<std::size_t>(ds.labels[static_cast<std::size_t>(v)]);
    const float* row = ds.feature_row(v);
    for (std::size_t j = 0; j < d; ++j) class_mean[c][j] += row[j];
    ++counts[c];
  }
  double spread = 0.0;
  for (std::size_t c = 0; c < class_mean.size(); ++c) {
    for (std::size_t j = 0; j < d; ++j) {
      class_mean[c][j] /= static_cast<double>(std::max<std::size_t>(counts[c], 1));
      spread += class_mean[c][j] * class_mean[c][j];
    }
  }
  EXPECT_GT(spread, 0.5);  // class means are separated from the origin
}

TEST(Dataset, PowerLawAugmentationVariesWithIndex) {
  const Dataset a = make_power_law_augmentation(0, 1);
  const Dataset b = make_power_law_augmentation(1, 1);
  EXPECT_NE(a.num_nodes(), b.num_nodes());
  EXPECT_NO_THROW(a.validate());
  EXPECT_NO_THROW(b.validate());
  EXPECT_DOUBLE_EQ(a.real_scale_factor, 1.0);
}

}  // namespace
}  // namespace gnav::graph
