// TrainConfig — one point in GNNavigator's design space. Every field is a
// "reconfigurable setting" from Fig. 3 (blue dash-line rectangles); the
// DSE explorer mutates these, and the guideline handed to users is this
// struct serialized as `key = value;` text.
#pragma once

#include <string>
#include <vector>

#include "cache/device_cache.hpp"
#include "nn/model.hpp"
#include "sampling/sampler.hpp"
#include "support/config_map.hpp"

namespace gnav::runtime {

struct TrainConfig {
  /// Human-readable tag ("pyg", "pagraph-full", "dse-1423", ...).
  std::string name = "custom";

  // --- Category 1: sampling strategies --------------------------------
  sampling::SamplerKind sampler = sampling::SamplerKind::kNodeWise;
  /// Fanout per hop (node/layer-wise) or walk length (SAINT: size of list).
  std::vector<int> hop_list = {10, 10};
  /// Target-vertex count |B_0| per iteration.
  std::size_t batch_size = 1024;
  /// Locality bias rate θ_bias in [0,1]; > 0 prefers device-cached
  /// vertices during neighbor selection (2PGraph-style).
  double bias_rate = 0.0;
  /// SAINT node/edge budget as multiple of |B_0|.
  double saint_budget_multiplier = 8.0;

  // --- Category 2: transmission strategies ----------------------------
  /// Cache size as a fraction r of |V| (feature rows resident on device).
  double cache_ratio = 0.0;
  cache::CachePolicy cache_policy = cache::CachePolicy::kNone;
  /// INT8 feature compression on the host-device link (EXACT-style
  /// activation/feature compression): 4x fewer transfer bytes, slight
  /// quantization noise on the training features.
  bool compress_features = false;

  // --- Category 3: model design ---------------------------------------
  nn::ModelKind model = nn::ModelKind::kSage;
  std::size_t hidden_dim = 64;
  std::size_t num_layers = 2;
  float dropout = 0.3f;

  // --- Category 4: computation ----------------------------------------
  /// Degree-descending vertex reordering before training (improves host
  /// sampling locality; see backend for the modeled effect).
  bool reorder = false;
  /// Host/device pipelining (Eq. 4's max() overlap). Disabling it models
  /// a strictly sequential runtime — kept as an ablation toggle.
  bool pipeline_overlap = true;
  float learning_rate = 0.01f;

  /// Throws gnav::Error when fields are inconsistent (empty hop list,
  /// cache policy/ratio mismatch, bias without a cache to bias toward...).
  void validate() const;

  /// Serialization to/from the guideline `key = value;` format.
  ConfigMap to_config_map() const;
  static TrainConfig from_config_map(const ConfigMap& cm);

  /// Compact one-line summary for logs and bench tables.
  std::string summary() const;

  bool operator==(const TrainConfig& other) const;
};

}  // namespace gnav::runtime
