// Tests for the multi-tenant serve layer (serve::JobScheduler):
//
//   - admission pricing is EXACTLY PerfEstimator::predict_pipelined_wall_s
//     (fitted overlap when the corpus carried async rows, Eq. 4 fallback
//     on a sync-only corpus) and the price ceiling rejects at submit;
//   - the fair-share pick sequence is deterministic and weights tenants
//     by priority;
//   - contention bit-identity: N jobs submitted together each produce a
//     TrainReport whose data fields are identical to running the job
//     alone (timing fields excluded), at pool sizes {1, 2, 8};
//   - backend isolation: concurrent jobs with different compute backend
//     ids never read each other's (or the factory-default) selection —
//     covered by the TSan CI job together with the rest of this file;
//   - online feedback: drain() folds completed jobs back into the corpus
//     and refits, flipping admission pricing from the analytic fallback
//     to the fitted overlap model;
//   - kNavigateTrain jobs run DSE-then-train deterministically.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "compute/backend.hpp"
#include "dse/design_space.hpp"
#include "dse/objectives.hpp"
#include "estimator/dataset_stats.hpp"
#include "estimator/profile_collector.hpp"
#include "graph/dataset.hpp"
#include "hw/platform.hpp"
#include "runtime/templates.hpp"
#include "serve/job_scheduler.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"

namespace gnav::serve {
namespace {

using runtime::PipelineMode;

graph::Dataset serve_dataset() {
  graph::SyntheticSpec spec;
  spec.name = "serve-unit";
  spec.num_nodes = 600;
  spec.num_classes = 4;
  spec.feature_dim = 12;
  spec.min_degree = 3;
  spec.max_degree = 60;
  return graph::make_synthetic_dataset(spec, 5);
}

/// Every deterministic (non-wall-clock) field must match EXACTLY — the
/// same contract test_pipeline.cpp pins for sync-vs-async executors.
void expect_reports_bit_identical(const runtime::TrainReport& solo,
                                  const runtime::TrainReport& contended) {
  EXPECT_EQ(solo.epoch_loss, contended.epoch_loss);
  EXPECT_EQ(solo.epoch_times_s, contended.epoch_times_s);
  EXPECT_EQ(solo.epoch_train_accuracy, contended.epoch_train_accuracy);
  EXPECT_EQ(solo.epoch_val_accuracy, contended.epoch_val_accuracy);
  EXPECT_EQ(solo.final_train_accuracy, contended.final_train_accuracy);
  EXPECT_EQ(solo.val_accuracy, contended.val_accuracy);
  EXPECT_EQ(solo.test_accuracy, contended.test_accuracy);
  EXPECT_EQ(solo.epoch_time_s, contended.epoch_time_s);
  EXPECT_EQ(solo.peak_memory_gb, contended.peak_memory_gb);
  EXPECT_EQ(solo.mem_model_gb, contended.mem_model_gb);
  EXPECT_EQ(solo.mem_cache_gb, contended.mem_cache_gb);
  EXPECT_EQ(solo.mem_runtime_gb, contended.mem_runtime_gb);
  EXPECT_EQ(solo.cache_hit_rate, contended.cache_hit_rate);
  EXPECT_EQ(solo.avg_batch_nodes, contended.avg_batch_nodes);
  EXPECT_EQ(solo.avg_batch_edges, contended.avg_batch_edges);
  EXPECT_EQ(solo.per_batch_nodes, contended.per_batch_nodes);
  EXPECT_EQ(solo.iterations_per_epoch, contended.iterations_per_epoch);
  EXPECT_EQ(solo.epoch_phases.sample_s, contended.epoch_phases.sample_s);
  EXPECT_EQ(solo.epoch_phases.transfer_s, contended.epoch_phases.transfer_s);
  EXPECT_EQ(solo.epoch_phases.replace_s, contended.epoch_phases.replace_s);
  EXPECT_EQ(solo.epoch_phases.compute_s, contended.epoch_phases.compute_s);
  EXPECT_EQ(solo.pipeline.modeled_overlapped_s,
            contended.pipeline.modeled_overlapped_s);
  EXPECT_EQ(solo.pipeline.modeled_sequential_s,
            contended.pipeline.modeled_sequential_s);
}

/// Rebuilds the exact RunOptions run_job() used for `job`, pointed at
/// `pool` — running the backend with these IS "running the job alone".
runtime::RunOptions solo_options(const JobOutcome& job,
                                 support::ThreadPool* pool) {
  runtime::RunOptions ro;
  ro.epochs = job.request.epochs;
  ro.seed = job.seed;
  ro.evaluate_every_epoch = job.request.evaluate_every_epoch;
  ro.record_batch_sizes = true;
  ro.pool = pool;
  ro.backend_id = job.request.backend_id;
  ro.pipeline = job.request.pipeline;
  return ro;
}

class ServeFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    hw_ = new hw::HardwareProfile(hw::make_profile("rtx4090"));
    dataset_ = new graph::Dataset(serve_dataset());
    backend_ = new runtime::RuntimeBackend(*dataset_, *hw_);
    stats_ = new estimator::DatasetStats(
        estimator::compute_dataset_stats(*dataset_));

    estimator::CollectorOptions opts;
    opts.configs_per_dataset = 16;
    opts.epochs = 1;
    opts.seed = 77;
    opts.async_every = 2;  // half the corpus measures the async executor
    corpus_ = new std::vector<estimator::ProfiledRun>(
        estimator::collect_profiles(*dataset_, *hw_, opts));
    est_ = new estimator::PerfEstimator(*hw_);
    est_->fit(*corpus_);

    // A sync-only corpus leaves the overlap model unfitted — the Eq. 4
    // admission fallback the feedback test upgrades from.
    estimator::CollectorOptions sync_opts = opts;
    sync_opts.configs_per_dataset = 12;
    sync_opts.async_every = 0;
    sync_corpus_ = new std::vector<estimator::ProfiledRun>(
        estimator::collect_profiles(*dataset_, *hw_, sync_opts));
  }
  static void TearDownTestSuite() {
    delete sync_corpus_;
    delete est_;
    delete corpus_;
    delete stats_;
    delete backend_;
    delete dataset_;
    delete hw_;
  }

  static JobRequest async_request() {
    JobRequest req;
    req.config = runtime::template_pagraph_full();
    req.config.pipeline_overlap = true;
    req.config.batch_size = 128;
    req.epochs = 2;
    req.pipeline.mode = PipelineMode::kAsync;
    req.pipeline.prefetch_depth = 2;
    req.pipeline.sampler_workers = 2;
    return req;
  }

  static JobRequest sync_request() {
    JobRequest req;
    req.config = runtime::template_pyg();
    req.config.batch_size = 128;
    req.epochs = 1;
    req.pipeline.mode = PipelineMode::kSync;
    return req;
  }

  static hw::HardwareProfile* hw_;
  static graph::Dataset* dataset_;
  static runtime::RuntimeBackend* backend_;
  static estimator::DatasetStats* stats_;
  static std::vector<estimator::ProfiledRun>* corpus_;
  static std::vector<estimator::ProfiledRun>* sync_corpus_;
  static estimator::PerfEstimator* est_;
};

hw::HardwareProfile* ServeFixture::hw_ = nullptr;
graph::Dataset* ServeFixture::dataset_ = nullptr;
runtime::RuntimeBackend* ServeFixture::backend_ = nullptr;
estimator::DatasetStats* ServeFixture::stats_ = nullptr;
std::vector<estimator::ProfiledRun>* ServeFixture::corpus_ = nullptr;
std::vector<estimator::ProfiledRun>* ServeFixture::sync_corpus_ = nullptr;
estimator::PerfEstimator* ServeFixture::est_ = nullptr;

// ------------------------------------------------------ admission pricing

using ServeAdmission = ServeFixture;

TEST_F(ServeAdmission, PriceIsExactlyPredictPipelinedWall) {
  JobScheduler sched(*backend_, *est_, *stats_, SchedulerOptions{});
  JobRequest req = async_request();
  req.epochs = 3;

  const AdmissionPrice price = sched.price(req);
  const estimator::PerfPrediction p = est_->predict(req.config, *stats_);
  ASSERT_GT(p.overlap_ratio_analytic, 0.0);
  const double serial = p.time_s / p.overlap_ratio_analytic * 3.0;
  EXPECT_DOUBLE_EQ(price.serial_stage_s, serial);
  // The pinned claim: admission is predict_pipelined_wall_s, no more and
  // no less, under the request's executor shape.
  const estimator::OverlapExecutorShape shape{2, 2};
  EXPECT_DOUBLE_EQ(
      price.predicted_wall_s,
      est_->predict_pipelined_wall_s(req.config, *stats_, shape, serial));
  ASSERT_TRUE(est_->overlap_model().is_fitted());
  EXPECT_TRUE(price.overlap_fitted);
  EXPECT_GT(price.predicted_wall_s, 0.0);

  // Sync-executor jobs are priced at their serial stage seconds.
  JobRequest sync_req = req;
  sync_req.pipeline.mode = PipelineMode::kSync;
  const AdmissionPrice sync_price = sched.price(sync_req);
  EXPECT_DOUBLE_EQ(sync_price.predicted_wall_s, sync_price.serial_stage_s);
  EXPECT_FALSE(sync_price.overlap_fitted);
  EXPECT_DOUBLE_EQ(sync_price.overlap_ratio, 1.0);
}

TEST_F(ServeAdmission, CeilingRejectsAtSubmitNeverRuns) {
  SchedulerOptions options;
  JobScheduler probe(*backend_, *est_, *stats_, options);
  const double fair = probe.price(sync_request()).predicted_wall_s;
  ASSERT_GT(fair, 0.0);

  options.max_price_s = fair * 0.5;
  support::ThreadPool pool(2);
  options.pool = &pool;
  JobScheduler sched(*backend_, *est_, *stats_, options);
  const std::size_t id = sched.submit(sync_request());
  EXPECT_EQ(sched.outcome(id).state, JobState::kRejected);
  const DrainStats stats = sched.drain();
  EXPECT_EQ(stats.started, 0u);
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(sched.outcome(id).state, JobState::kRejected);
  EXPECT_EQ(to_string(sched.outcome(id).state), "rejected");
}

// ------------------------------------------------- deterministic schedule

using ServeScheduler = ServeFixture;

TEST_F(ServeScheduler, PerJobSeedsAreDerivedDeterministically) {
  SchedulerOptions options;
  options.seed = 21;
  JobScheduler sched(*backend_, *est_, *stats_, options);
  const std::size_t a = sched.submit(sync_request());
  JobRequest pinned = sync_request();
  pinned.seed = 1234;
  const std::size_t b = sched.submit(pinned);
  EXPECT_EQ(sched.outcome(a).seed, support::task_seed(21, 0));
  EXPECT_EQ(sched.outcome(b).seed, 1234u);
  EXPECT_EQ(sched.size(), 2u);
}

TEST_F(ServeScheduler, OutcomeIsAValueSnapshotNotALiveAlias) {
  support::ThreadPool pool(2);
  SchedulerOptions options;
  options.pool = &pool;
  options.seed = 7;
  JobScheduler sched(*backend_, *est_, *stats_, options);
  const std::size_t first = sched.submit(sync_request());
  // Bind the accessor's result by reference-to-const: with the old
  // `const JobOutcome&` signature this was a live alias into the
  // mutex-guarded job table, and the drain below rewrote it under us
  // (state flipping to kDone). By value it is a lifetime-extended
  // snapshot that the churn must not touch.
  const auto& before = sched.outcome(first);
  EXPECT_EQ(before.state, JobState::kQueued);
  for (int i = 0; i < 4; ++i) sched.submit(sync_request());
  sched.drain();
  EXPECT_EQ(before.state, JobState::kQueued);
  EXPECT_EQ(before.seed, support::task_seed(7, 0));
  const JobOutcome after = sched.outcome(first);
  EXPECT_EQ(after.state, JobState::kDone);
  EXPECT_EQ(after.seed, before.seed);
  EXPECT_EQ(after.start_order, 0u);
}

TEST_F(ServeScheduler, FairShareWeightsTenantsByPriority) {
  support::ThreadPool pool(2);
  SchedulerOptions options;
  options.pool = &pool;
  options.max_active = 1;  // single lane: start order IS the pick order
  JobScheduler sched(*backend_, *est_, *stats_, options);

  // Four jobs for the priority-2 tenant (ids 0-3), two for the
  // priority-1 tenant (ids 4, 5); identical configs mean identical
  // prices p, so the fair-share argmin (charge p / priority at pick,
  // ties to the lowest id) yields exactly: 0, 4, 1, 2, 5, 3.
  for (int i = 0; i < 4; ++i) {
    JobRequest req = sync_request();
    req.tenant = "heavy";
    req.priority = 2.0;
    sched.submit(req);
  }
  for (int i = 0; i < 2; ++i) {
    JobRequest req = sync_request();
    req.tenant = "light";
    req.priority = 1.0;
    sched.submit(req);
  }
  const DrainStats stats = sched.drain();
  EXPECT_EQ(stats.started, 6u);
  EXPECT_EQ(stats.completed, 6u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_GT(stats.wall_s, 0.0);
  EXPECT_GT(stats.jobs_per_min(), 0.0);

  const std::vector<std::size_t> expected_start_order = {0, 2, 3, 5, 1, 4};
  for (std::size_t id = 0; id < 6; ++id) {
    EXPECT_EQ(sched.outcome(id).start_order, expected_start_order[id])
        << "job " << id;
    EXPECT_EQ(sched.outcome(id).state, JobState::kDone);
  }
}

TEST_F(ServeScheduler, ConcurrentSubmitDuringDrainIsSafe) {
  // Regression for an unguarded read of starts_ in drain(): the
  // before-count used to be read outside the mutex, racing with
  // pick_next_locked()'s starts_++ on the lanes and with concurrent
  // submit() calls. Run drain() on one thread while another thread
  // keeps submitting; TSan (CI) pins the data-race half, the
  // accounting assertions below pin the lost-update half.
  support::ThreadPool pool(4);
  SchedulerOptions options;
  options.pool = &pool;
  options.seed = 3;
  options.max_active = 2;
  JobScheduler sched(*backend_, *est_, *stats_, options);
  for (int i = 0; i < 3; ++i) sched.submit(sync_request());

  DrainStats first;
  std::thread drainer([&] { first = sched.drain(); });
  constexpr std::size_t kLateJobs = 4;
  for (std::size_t i = 0; i < kLateJobs; ++i) sched.submit(sync_request());
  drainer.join();
  // Late jobs may or may not have been picked up by the first drain's
  // lanes; a second drain finishes whatever is left.
  const DrainStats second = sched.drain();

  EXPECT_EQ(sched.size(), 3 + kLateJobs);
  EXPECT_EQ(first.started + second.started, 3 + kLateJobs);
  EXPECT_EQ(first.completed + second.completed, 3 + kLateJobs);
  EXPECT_EQ(first.failed + second.failed, 0u);
  for (std::size_t id = 0; id < sched.size(); ++id) {
    EXPECT_EQ(sched.outcome(id).state, JobState::kDone) << "job " << id;
  }
}

// ----------------------------------------- contention bit-identity suite

using ServeContention = ServeFixture;

TEST_F(ServeContention, ReportsMatchSoloAtPoolSizes1_2_8) {
  // A mixed tenant load: sync and async executors, scalar and blocked
  // compute backends, two distinct configs.
  const auto make_jobs = [] {
    std::vector<JobRequest> jobs;
    JobRequest a = sync_request();
    a.tenant = "t0";
    a.epochs = 2;
    jobs.push_back(a);
    JobRequest b = sync_request();
    b.tenant = "t1";
    b.epochs = 2;
    b.backend_id = compute::kScalarBackendId;
    jobs.push_back(b);
    JobRequest c = async_request();
    c.tenant = "t0";
    jobs.push_back(c);
    JobRequest d = async_request();
    d.tenant = "t1";
    d.backend_id = compute::kScalarBackendId;
    jobs.push_back(d);
    return jobs;
  };

  // Solo baselines: each job run alone, exactly as run_job() would.
  std::vector<runtime::TrainReport> solo;
  {
    support::ThreadPool solo_pool(2);
    SchedulerOptions options;
    options.pool = &solo_pool;
    options.seed = 7;
    JobScheduler seeder(*backend_, *est_, *stats_, options);
    for (const JobRequest& req : make_jobs()) seeder.submit(req);
    for (std::size_t id = 0; id < seeder.size(); ++id) {
      solo.push_back(backend_->run(
          seeder.outcome(id).request.config,
          solo_options(seeder.outcome(id), &solo_pool)));
    }
  }

  for (const std::size_t pool_size : {1u, 2u, 8u}) {
    SCOPED_TRACE("pool size " + std::to_string(pool_size));
    support::ThreadPool pool(pool_size);
    SchedulerOptions options;
    options.pool = &pool;
    options.seed = 7;
    options.max_active = 2;
    JobScheduler sched(*backend_, *est_, *stats_, options);
    for (const JobRequest& req : make_jobs()) sched.submit(req);
    const DrainStats stats = sched.drain();
    EXPECT_EQ(stats.completed, 4u);
    EXPECT_EQ(stats.failed, 0u);
    for (std::size_t id = 0; id < 4; ++id) {
      SCOPED_TRACE("job " + std::to_string(id));
      ASSERT_EQ(sched.outcome(id).state, JobState::kDone);
      expect_reports_bit_identical(solo[id], sched.outcome(id).report);
    }
  }
}

// --------------------------------------------- compute backend isolation

using ServeSpmmIsolation = ServeFixture;

TEST_F(ServeSpmmIsolation, ConcurrentBackendsIgnoreHostileDefaultFlip) {
  // Flip the factory-wide default BEFORE the jobs run: if any stage
  // thread consulted it instead of the job's pinned BackendScope, the
  // scalar and blocked jobs would trample each other (and TSan would see
  // the jobs racing the flip). Both must still match their solo runs
  // bit-for-bit.
  const std::string previous = compute::BackendFactory::default_id();
  compute::BackendFactory::set_default_id(compute::kScalarBackendId);

  support::ThreadPool pool(4);
  SchedulerOptions options;
  options.pool = &pool;
  options.max_active = 2;  // both jobs genuinely concurrent
  options.seed = 13;
  JobScheduler sched(*backend_, *est_, *stats_, options);

  JobRequest blocked = async_request();
  blocked.backend_id = compute::kBlockedBackendId;
  JobRequest scalar = async_request();
  scalar.backend_id = compute::kScalarBackendId;
  const std::size_t b_id = sched.submit(blocked);
  const std::size_t s_id = sched.submit(scalar);
  sched.drain();
  compute::BackendFactory::set_default_id(previous);

  ASSERT_EQ(sched.outcome(b_id).state, JobState::kDone);
  ASSERT_EQ(sched.outcome(s_id).state, JobState::kDone);
  EXPECT_EQ(sched.outcome(b_id).report.backend_id,
            compute::kBlockedBackendId);
  EXPECT_EQ(sched.outcome(s_id).report.backend_id,
            compute::kScalarBackendId);
  support::ThreadPool solo_pool(2);
  const auto solo_blocked = backend_->run(
      blocked.config, solo_options(sched.outcome(b_id), &solo_pool));
  const auto solo_scalar = backend_->run(
      scalar.config, solo_options(sched.outcome(s_id), &solo_pool));
  expect_reports_bit_identical(solo_blocked, sched.outcome(b_id).report);
  expect_reports_bit_identical(solo_scalar, sched.outcome(s_id).report);
}

TEST_F(ServeSpmmIsolation, UnknownBackendIdIsRejectedAtSubmit) {
  JobScheduler sched(*backend_, *est_, *stats_, SchedulerOptions{});
  JobRequest req = sync_request();
  req.backend_id = "gpu-imaginary";
  EXPECT_THROW(sched.submit(req), Error);
}

// ------------------------------------------------- online corpus feedback

using ServeFeedback = ServeFixture;

TEST_F(ServeFeedback, DrainRefitsEstimatorAndUpgradesPricing) {
  // Start from the analytic fallback: a sync-only corpus leaves the
  // overlap model unfitted.
  estimator::PerfEstimator est(*hw_);
  est.fit(*sync_corpus_);
  ASSERT_FALSE(est.overlap_model().is_fitted());

  support::ThreadPool pool(4);
  SchedulerOptions options;
  options.pool = &pool;
  options.max_active = 2;
  options.refit_after_drain = true;
  options.base_corpus = sync_corpus_;
  JobScheduler sched(*backend_, est, *stats_, options);

  const AdmissionPrice before = sched.price(async_request());
  EXPECT_FALSE(before.overlap_fitted);

  // Five async jobs give the refit five measured-wall rows — above the
  // overlap model's minimum — so pricing improves online.
  for (int i = 0; i < 5; ++i) {
    JobRequest req = async_request();
    req.tenant = "t" + std::to_string(i % 2);
    req.epochs = 1;
    sched.submit(req);
  }
  const DrainStats stats = sched.drain();
  EXPECT_EQ(stats.completed, 5u);
  EXPECT_EQ(sched.feedback().size(), 5u);
  EXPECT_TRUE(est.overlap_model().is_fitted());

  const AdmissionPrice after = sched.price(async_request());
  EXPECT_TRUE(after.overlap_fitted);
  // The consulted ratio is now measured-informed, not Eq. 4's analytic
  // value. (The serial stage seconds move too — the whole corpus refit
  // updates every learned component, which is the point of feedback.)
  EXPECT_NE(after.overlap_ratio, before.overlap_ratio);
}

TEST_F(ServeFeedback, FeedbackReturnsASnapshotNotAnAlias) {
  // Regression: feedback() used to hand back a const reference into
  // mutex-guarded state — the caller's "corpus" silently mutated (or
  // dangled) across the next drain(), which clears and rebuilds
  // feedback_. It now returns a by-value snapshot taken under the lock.
  support::ThreadPool pool(2);
  SchedulerOptions options;
  options.pool = &pool;
  JobScheduler sched(*backend_, *est_, *stats_, options);

  sched.submit(sync_request());
  sched.submit(sync_request());
  ASSERT_EQ(sched.drain().completed, 2u);
  // Binding a reference here is deliberate: against the old aliasing
  // API this reference would observe the second drain's clear+rebuild.
  const auto& first_corpus = sched.feedback();
  ASSERT_EQ(first_corpus.size(), 2u);

  sched.submit(sync_request());
  ASSERT_EQ(sched.drain().completed, 1u);
  // drain() rebuilds feedback_ from every completed job (3 by now); the
  // snapshot taken before must be untouched.
  EXPECT_EQ(first_corpus.size(), 2u);
  EXPECT_EQ(sched.feedback().size(), 3u);
}

// ----------------------------------------------------- navigate-then-train

using ServeNavigate = ServeFixture;

TEST_F(ServeNavigate, NavigateTrainDecidesAndTrainsDeterministically) {
  const dse::DesignSpace space = dse::DesignSpace::reduced(dse::BaseSettings{});
  support::ThreadPool pool(4);
  SchedulerOptions options;
  options.pool = &pool;
  options.max_active = 2;
  JobScheduler sched(*backend_, *est_, *stats_, options, &space);

  JobRequest req;
  req.kind = JobKind::kNavigateTrain;
  req.config = runtime::template_pyg();
  req.config.batch_size = 128;
  req.epochs = 1;
  req.seed = 42;  // identical pinned seed → bit-identical twin reports
  req.targets = dse::targets_balance();
  req.constraints.max_memory_gb = hw_->device.memory_gb;
  const std::size_t first = sched.submit(req);
  const std::size_t second = sched.submit(req);
  const DrainStats stats = sched.drain();
  EXPECT_EQ(stats.completed, 2u);

  const JobOutcome& a = sched.outcome(first);
  const JobOutcome& b = sched.outcome(second);
  ASSERT_EQ(a.state, JobState::kDone);
  ASSERT_EQ(b.state, JobState::kDone);
  EXPECT_EQ(a.decided_config.name, "gnav-balance");
  EXPECT_EQ(a.decided_config.to_config_map().to_guideline_text(),
            b.decided_config.to_config_map().to_guideline_text());
  expect_reports_bit_identical(a.report, b.report);
  EXPECT_FALSE(a.report.epoch_loss.empty());
}

TEST_F(ServeNavigate, NavigateWithoutSpaceIsRejectedAtSubmit) {
  JobScheduler sched(*backend_, *est_, *stats_, SchedulerOptions{});
  JobRequest req;
  req.kind = JobKind::kNavigateTrain;
  req.config = runtime::template_pyg();
  EXPECT_THROW(sched.submit(req), Error);
}

}  // namespace
}  // namespace gnav::serve
