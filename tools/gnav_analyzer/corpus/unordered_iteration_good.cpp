// Known-good: ordered carriers drive the iteration; the unordered
// container is only used for keyed lookups, where hash order never
// matters.
#include "gnav_stub.hpp"

int sum_vector(const std::vector<int>& values) {
  int sum = 0;
  for (int v : values) {
    sum += v;
  }
  return sum;
}

int keyed_lookups(std::unordered_map<int, int>& m,
                  const std::vector<int>& keys) {
  int sum = 0;
  for (int k : keys) {
    sum += m[k];
  }
  return sum;
}
