// Micro-benchmarks (google-benchmark) for the hot kernels under the
// runtime backend: neighbor sampling, sparse aggregation, dense matmul,
// cache lookups, and full train steps. These are CPU-substrate numbers,
// not paper figures — they document where simulator time goes.
#include <benchmark/benchmark.h>

#include "cache/device_cache.hpp"
#include "graph/dataset.hpp"
#include "graph/generators.hpp"
#include "nn/aggregate.hpp"
#include "nn/model.hpp"
#include "sampling/sampler_factory.hpp"
#include "tensor/ops.hpp"

using namespace gnav;

namespace {

const graph::CsrGraph& bench_graph() {
  static const graph::CsrGraph g = [] {
    Rng rng(1);
    return graph::power_law_configuration(20000, 2.2, 4, 500, rng);
  }();
  return g;
}

void BM_NodeWiseSampling(benchmark::State& state) {
  const auto& g = bench_graph();
  Rng rng(2);
  sampling::SamplerSettings settings;
  settings.hop_list = {static_cast<int>(state.range(0)),
                       static_cast<int>(state.range(0))};
  const auto sampler = sampling::make_sampler(settings, nullptr);
  std::vector<graph::NodeId> seeds;
  for (auto v : rng.sample_without_replacement(g.num_nodes(), 512)) {
    seeds.push_back(v);
  }
  for (auto _ : state) {
    auto mb = sampler->sample(g, seeds, rng);
    benchmark::DoNotOptimize(mb.nodes.data());
    state.counters["batch_nodes"] =
        static_cast<double>(mb.num_nodes());
  }
}
BENCHMARK(BM_NodeWiseSampling)->Arg(5)->Arg(10)->Arg(25);

void BM_SaintWalkSampling(benchmark::State& state) {
  const auto& g = bench_graph();
  Rng rng(3);
  sampling::SamplerSettings settings;
  settings.kind = sampling::SamplerKind::kSaintWalk;
  settings.hop_list = std::vector<int>(4, 1);
  const auto sampler = sampling::make_sampler(settings, nullptr);
  std::vector<graph::NodeId> seeds;
  for (auto v : rng.sample_without_replacement(g.num_nodes(), 512)) {
    seeds.push_back(v);
  }
  for (auto _ : state) {
    auto mb = sampler->sample(g, seeds, rng);
    benchmark::DoNotOptimize(mb.nodes.data());
  }
}
BENCHMARK(BM_SaintWalkSampling);

void BM_AggregateMean(benchmark::State& state) {
  const auto& g = bench_graph();
  Rng rng(4);
  const auto x = tensor::Tensor::uniform(
      static_cast<std::size_t>(g.num_nodes()),
      static_cast<std::size_t>(state.range(0)), -1, 1, rng);
  for (auto _ : state) {
    auto y = nn::aggregate_mean(g, x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_AggregateMean)->Arg(32)->Arg(128);

void BM_AggregateGcn(benchmark::State& state) {
  const auto& g = bench_graph();
  Rng rng(5);
  const auto x = tensor::Tensor::uniform(
      static_cast<std::size_t>(g.num_nodes()), 64, -1, 1, rng);
  for (auto _ : state) {
    auto y = nn::aggregate_gcn(g, x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_AggregateGcn);

void BM_Matmul(benchmark::State& state) {
  Rng rng(6);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = tensor::Tensor::uniform(n, 64, -1, 1, rng);
  const auto b = tensor::Tensor::uniform(64, 64, -1, 1, rng);
  for (auto _ : state) {
    auto c = tensor::matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n) * 64 *
                          64 * 2);
}
BENCHMARK(BM_Matmul)->Arg(1024)->Arg(8192);

void BM_CacheLookup(benchmark::State& state) {
  const auto& g = bench_graph();
  const auto policy = static_cast<cache::CachePolicy>(state.range(0));
  cache::DeviceCache dc(policy, 4000, g);
  Rng rng(7);
  std::vector<graph::NodeId> batch;
  for (int i = 0; i < 4000; ++i) {
    batch.push_back(static_cast<graph::NodeId>(
        rng.uniform_index(static_cast<std::uint64_t>(g.num_nodes()))));
  }
  for (auto _ : state) {
    auto res = dc.lookup_and_update(batch);
    benchmark::DoNotOptimize(res.misses.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(batch.size()));
}
BENCHMARK(BM_CacheLookup)
    ->Arg(static_cast<int>(cache::CachePolicy::kStatic))
    ->Arg(static_cast<int>(cache::CachePolicy::kLru))
    ->Arg(static_cast<int>(cache::CachePolicy::kFifo));

void BM_GnnTrainStep(benchmark::State& state) {
  Rng rng(8);
  const auto kind = static_cast<nn::ModelKind>(state.range(0));
  const auto g = [] {
    Rng r(9);
    return graph::power_law_configuration(3000, 2.2, 4, 120, r);
  }();
  nn::ModelConfig mc;
  mc.kind = kind;
  mc.in_dim = 48;
  mc.hidden_dim = 64;
  mc.out_dim = 8;
  mc.num_layers = 2;
  nn::GnnModel model(mc, rng);
  const auto x = tensor::Tensor::uniform(
      static_cast<std::size_t>(g.num_nodes()), 48, -1, 1, rng);
  tensor::Tensor grad(static_cast<std::size_t>(g.num_nodes()), 8, 1e-3f);
  for (auto _ : state) {
    auto out = model.forward(g, x, true, rng);
    model.backward(grad);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_GnnTrainStep)
    ->Arg(static_cast<int>(nn::ModelKind::kGcn))
    ->Arg(static_cast<int>(nn::ModelKind::kSage))
    ->Arg(static_cast<int>(nn::ModelKind::kGat));

}  // namespace

BENCHMARK_MAIN();
