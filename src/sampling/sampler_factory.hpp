// Constructs a sampler from the reconfigurable settings of the runtime
// backend (sampler kind + hop list + bias). This is the Fig. 3 "Sampler
// Choices" switch.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "sampling/sampler.hpp"

namespace gnav::sampling {

struct SamplerSettings {
  SamplerKind kind = SamplerKind::kNodeWise;
  /// Fanout per hop for node/layer-wise; length = walk length for SAINT.
  std::vector<int> hop_list = {10, 10};
  /// Locality bias rate in [0, 1]; 0 disables biased sampling.
  double bias_rate = 0.0;
  /// SAINT node/edge budget as a multiple of the seed count.
  double saint_budget_multiplier = 8.0;
  /// Cluster sampler: number of precomputed graph parts and the cap on
  /// clusters merged into one batch.
  int cluster_num_parts = 40;
  int cluster_max_per_batch = 8;
};

/// `preference` (may be null) marks preferred vertices for biased
/// sampling; the pointer must outlive the sampler (the runtime backend
/// hands in its device-cache residency bitmap). `preference_version`
/// (may be empty) is a provider of that bitmap's change counter —
/// samplers key cached weighted-draw structures on it; when empty the
/// bitmap is treated as immutable for the sampler's lifetime. A callable
/// (e.g. `[&cache] { return cache.residency_version(); }`) instead of a
/// `const std::uint64_t*`: the old pointer form invited aliasing the
/// address of a by-reference accessor, which kept a live pointer into
/// cache internals.
std::unique_ptr<Sampler> make_sampler(
    const SamplerSettings& settings, const std::vector<char>* preference,
    std::function<std::uint64_t()> preference_version = nullptr);

}  // namespace gnav::sampling
