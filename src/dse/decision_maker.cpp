#include "dse/decision_maker.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/stats.hpp"

namespace gnav::dse {

DecisionMaker::DecisionMaker(ExploreTargets targets)
    : targets_(std::move(targets)) {
  GNAV_CHECK(targets_.time_weight >= 0.0 && targets_.memory_weight >= 0.0 &&
                 targets_.accuracy_weight >= 0.0,
             "weights must be non-negative");
  GNAV_CHECK(targets_.time_weight + targets_.memory_weight +
                     targets_.accuracy_weight >
                 0.0,
             "at least one weight must be positive");
}

double DecisionMaker::score(const PerfPoint& p,
                            const PerfPoint& reference) const {
  const double t_ref = std::max(reference.time_s, 1e-9);
  const double m_ref = std::max(reference.memory_gb, 1e-9);
  const double a_ref = std::max(reference.accuracy, 1e-9);
  return targets_.time_weight * (p.time_s / t_ref) +
         targets_.memory_weight * (p.memory_gb / m_ref) -
         targets_.accuracy_weight * (p.accuracy / a_ref);
}

double effective_time_s(const estimator::PerfPrediction& p) {
  // `time_s` carries Eq. 4's analytic overlap for pipelined configs.
  // When the overlap model was fitted from measured executor walls,
  // re-scale to the fitted prediction of the real async-executor wall:
  //   serial = time_s / analytic_ratio;  wall = serial * fitted_ratio.
  // Sync configs and unfitted corpora leave time_s untouched (both
  // ratios are equal there, so the expression is exactly time_s anyway).
  if (p.overlap_fitted && p.overlap_ratio_analytic > 0.0) {
    return p.time_s * (p.overlap_ratio / p.overlap_ratio_analytic);
  }
  return p.time_s;
}

Decision DecisionMaker::decide(const ExplorationResult& result) const {
  GNAV_CHECK(!result.feasible.empty(),
             "no feasible candidate — relax the runtime constraints");
  GNAV_CHECK(!result.pareto.empty(), "empty Pareto front");

  // Rank by the wall the chosen executor will actually deliver: the
  // fitted pipelined wall for async-eligible candidates, the analytic T
  // otherwise. Medians use the same effective times so the normalization
  // stays unit-consistent with the scored points.
  std::vector<double> times;
  std::vector<double> mems;
  std::vector<double> accs;
  for (const Candidate& c : result.feasible) {
    times.push_back(effective_time_s(c.predicted));
    mems.push_back(c.predicted.memory_gb);
    accs.push_back(c.predicted.accuracy);
  }
  const PerfPoint reference{median(times), median(mems), median(accs)};

  Decision best;
  bool first = true;
  for (std::size_t idx : result.pareto) {
    const Candidate& c = result.feasible[idx];
    PerfPoint p = c.point();
    p.time_s = effective_time_s(c.predicted);
    const double s = score(p, reference);
    if (first || s < best.score) {
      best.chosen = c;
      best.score = s;
      best.feasible_index = idx;
      best.ranked_time_s = p.time_s;
      first = false;
    }
  }
  best.overlap_ratio = best.chosen.predicted.overlap_ratio;
  best.overlap_ratio_analytic = best.chosen.predicted.overlap_ratio_analytic;
  best.overlap_fitted = best.chosen.predicted.overlap_fitted;
  return best;
}

}  // namespace gnav::dse
