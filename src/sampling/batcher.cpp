#include "sampling/batcher.hpp"

#include "support/error.hpp"

namespace gnav::sampling {

SeedBatcher::SeedBatcher(std::vector<graph::NodeId> train_nodes,
                         std::size_t batch_size)
    : train_nodes_(std::move(train_nodes)), batch_size_(batch_size) {
  GNAV_CHECK(!train_nodes_.empty(), "no training nodes");
  GNAV_CHECK(batch_size_ >= 1, "batch size must be >= 1");
}

std::size_t SeedBatcher::batches_per_epoch() const {
  return (train_nodes_.size() + batch_size_ - 1) / batch_size_;
}

std::vector<std::vector<graph::NodeId>> SeedBatcher::epoch_batches(Rng& rng) {
  rng.shuffle(train_nodes_);
  std::vector<std::vector<graph::NodeId>> out;
  out.reserve(batches_per_epoch());
  for (std::size_t start = 0; start < train_nodes_.size();
       start += batch_size_) {
    const std::size_t end =
        std::min(start + batch_size_, train_nodes_.size());
    out.emplace_back(train_nodes_.begin() + static_cast<std::ptrdiff_t>(start),
                     train_nodes_.begin() + static_cast<std::ptrdiff_t>(end));
  }
  return out;
}

}  // namespace gnav::sampling
