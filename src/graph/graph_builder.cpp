#include "graph/graph_builder.hpp"

#include <algorithm>
#include <unordered_map>

#include "support/error.hpp"

namespace gnav::graph {

GraphBuilder::GraphBuilder(NodeId num_nodes) : num_nodes_(num_nodes) {
  GNAV_CHECK(num_nodes >= 0, "num_nodes must be non-negative");
}

void GraphBuilder::add_edge(NodeId src, NodeId dst) {
  GNAV_CHECK(src >= 0 && src < num_nodes_, "edge src out of range");
  GNAV_CHECK(dst >= 0 && dst < num_nodes_, "edge dst out of range");
  edges_.push_back({src, dst});
}

void GraphBuilder::add_undirected_edge(NodeId src, NodeId dst) {
  add_edge(src, dst);
  add_edge(dst, src);
}

GraphBuilder& GraphBuilder::remove_self_loops(bool enabled) {
  remove_self_loops_ = enabled;
  return *this;
}

GraphBuilder& GraphBuilder::deduplicate(bool enabled) {
  deduplicate_ = enabled;
  return *this;
}

GraphBuilder& GraphBuilder::symmetrize(bool enabled) {
  symmetrize_ = enabled;
  return *this;
}

CsrGraph GraphBuilder::build() const {
  std::vector<Edge> edges = edges_;
  if (symmetrize_) {
    const std::size_t original = edges.size();
    edges.reserve(original * 2);
    for (std::size_t i = 0; i < original; ++i) {
      edges.push_back({edges[i].dst, edges[i].src});
    }
  }
  if (remove_self_loops_) {
    std::erase_if(edges, [](const Edge& e) { return e.src == e.dst; });
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
  if (deduplicate_) {
    edges.erase(std::unique(edges.begin(), edges.end(),
                            [](const Edge& a, const Edge& b) {
                              return a.src == b.src && a.dst == b.dst;
                            }),
                edges.end());
  }

  std::vector<EdgeId> indptr(static_cast<std::size_t>(num_nodes_) + 1, 0);
  for (const Edge& e : edges) {
    ++indptr[static_cast<std::size_t>(e.src) + 1];
  }
  for (std::size_t i = 1; i < indptr.size(); ++i) indptr[i] += indptr[i - 1];
  std::vector<NodeId> indices(edges.size());
  // Edges are already sorted by (src, dst), so a linear copy preserves
  // ascending neighbor order within each vertex.
  for (std::size_t i = 0; i < edges.size(); ++i) indices[i] = edges[i].dst;
  return CsrGraph(std::move(indptr), std::move(indices));
}

CsrGraph build_undirected(NodeId num_nodes, const std::vector<Edge>& edges) {
  GraphBuilder b(num_nodes);
  for (const Edge& e : edges) b.add_edge(e.src, e.dst);
  b.symmetrize(true).deduplicate(true).remove_self_loops(true);
  return b.build();
}

CsrGraph induced_subgraph(const CsrGraph& g, const std::vector<NodeId>& nodes) {
  std::unordered_map<NodeId, NodeId> local;
  local.reserve(nodes.size() * 2);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    GNAV_CHECK(g.contains(nodes[i]), "induced_subgraph: node out of range");
    const bool inserted =
        local.emplace(nodes[i], static_cast<NodeId>(i)).second;
    GNAV_CHECK(inserted, "induced_subgraph: duplicate node id");
  }
  GraphBuilder b(static_cast<NodeId>(nodes.size()));
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (NodeId u : g.neighbors(nodes[i])) {
      auto it = local.find(u);
      if (it != local.end()) {
        b.add_edge(static_cast<NodeId>(i), it->second);
      }
    }
  }
  // The parent graph is already simple; keep dedup on for safety but do not
  // re-symmetrize (direction structure must be preserved).
  return b.deduplicate(true).remove_self_loops(true).build();
}

}  // namespace gnav::graph
