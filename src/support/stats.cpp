#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace gnav {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) { return std::sqrt(variance(xs)); }

double median(std::vector<double> xs) { return percentile(std::move(xs), 0.5); }

double percentile(std::vector<double> xs, double q) {
  GNAV_CHECK(q >= 0.0 && q <= 1.0, "percentile q must be in [0,1]");
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double min_of(const std::vector<double>& xs) {
  GNAV_CHECK(!xs.empty(), "min of empty vector");
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(const std::vector<double>& xs) {
  GNAV_CHECK(!xs.empty(), "max of empty vector");
  return *std::max_element(xs.begin(), xs.end());
}

double pearson(const std::vector<double>& xs, const std::vector<double>& ys) {
  GNAV_CHECK(xs.size() == ys.size(), "pearson: size mismatch");
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double fit_power_law_alpha(const std::vector<std::size_t>& degrees,
                           std::size_t x_min) {
  GNAV_CHECK(x_min >= 1, "x_min must be >= 1");
  double log_sum = 0.0;
  std::size_t n = 0;
  const double xm = static_cast<double>(x_min) - 0.5;
  for (std::size_t d : degrees) {
    if (d < x_min) continue;
    log_sum += std::log(static_cast<double>(d) / xm);
    ++n;
  }
  if (n < 2 || log_sum <= 0.0) return 0.0;
  return 1.0 + static_cast<double>(n) / log_sum;
}

}  // namespace gnav
