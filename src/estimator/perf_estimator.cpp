#include "estimator/perf_estimator.hpp"

#include <algorithm>
#include <cmath>

#include "compute/backend.hpp"
#include "estimator/features.hpp"
#include "support/error.hpp"
#include "support/log.hpp"

namespace gnav::estimator {
namespace {

/// Corpus rows predating the backend column (and reports from builds
/// without one) fit as the backend that actually executed them then.
const std::string& row_backend_id(const ProfiledRun& run) {
  static const std::string kDefault = compute::kBlockedBackendId;
  return run.report.backend_id.empty() ? kDefault : run.report.backend_id;
}

constexpr double kBytesPerGb = 1e9;
constexpr double kFrameworkOverheadGb = 0.55;  // matches runtime backend
constexpr double kOptimizerStateMultiplier = 4.0;

double iterations_per_epoch(const runtime::TrainConfig& c,
                            const DatasetStats& s) {
  return std::ceil(static_cast<double>(s.num_train_nodes) /
                   static_cast<double>(c.batch_size));
}

/// Eq. 10 Γ_runtime: miss staging buffer + activations/grads + attention
/// coefficients (GAT) + subgraph structure.
double analytic_runtime_gb(const runtime::TrainConfig& config,
                           const DatasetStats& stats, double batch_nodes,
                           double batch_edges, double hit_rate) {
  const double vol_scale =
      stats.real_feature_scale * stats.real_volume_scale;
  const double act_floats =
      2.0 * (static_cast<double>(stats.feature_dim) +
             static_cast<double>(config.num_layers - 1) *
                 static_cast<double>(config.hidden_dim) +
             static_cast<double>(stats.num_classes));
  const double miss_floats =
      static_cast<double>(stats.feature_dim) * (1.0 - hit_rate);
  const double edge_floats =
      (config.model == nn::ModelKind::kGat)
          ? 8.0 * 4.0 * static_cast<double>(config.num_layers)
          : 0.0;
  return ((miss_floats + act_floats) * batch_nodes * 4.0 * vol_scale +
          edge_floats * batch_edges * 4.0 * vol_scale +
          (8.0 * batch_edges + 8.0 * batch_nodes) *
              stats.real_volume_scale) /
         kBytesPerGb;
}

}  // namespace

namespace {
/// Executor shape `predict` consults the overlap model with: the
/// executor's default prefetch depth and a matching worker fan-out. A
/// compile-time constant (never the environment or the machine's core
/// count) so predictions are bit-identical across hosts and thread
/// counts.
constexpr OverlapExecutorShape kCanonicalShape{/*prefetch_depth=*/4,
                                               /*sampler_workers=*/4};
}  // namespace

PerfEstimator::PerfEstimator(hw::HardwareProfile hw)
    : hw_(hw), cost_(hw_), overlap_model_(hw_) {}

double PerfEstimator::analytic_model_memory_gb(
    const runtime::TrainConfig& config, const DatasetStats& stats) const {
  const auto in0 = static_cast<double>(stats.feature_dim);
  const auto hid = static_cast<double>(config.hidden_dim);
  const auto out = static_cast<double>(stats.num_classes);
  double params = 0.0;
  for (std::size_t l = 0; l < config.num_layers; ++l) {
    const double in = (l == 0) ? in0 : hid;
    const double o = (l + 1 == config.num_layers) ? out : hid;
    switch (config.model) {
      case nn::ModelKind::kGcn:
        params += in * o + o;
        break;
      case nn::ModelKind::kSage:
        params += 2.0 * in * o + o;
        break;
      case nn::ModelKind::kGat:
        params += in * o + 3.0 * o;
        break;
    }
  }
  return params * 4.0 * kOptimizerStateMultiplier * stats.real_feature_scale /
         kBytesPerGb;
}

double PerfEstimator::analytic_cache_memory_gb(
    const runtime::TrainConfig& config, const DatasetStats& stats) const {
  const double capacity =
      config.cache_ratio * static_cast<double>(stats.profile.num_nodes);
  const double feat_bytes = static_cast<double>(stats.feature_dim) * 4.0;
  // Mirrors RuntimeBackend::cache_memory_gb: payload + per-row index.
  return capacity *
         (feat_bytes * stats.real_feature_scale +
          cache::kIndexBytesPerRow) *
         stats.real_scale_factor / kBytesPerGb;
}

double PerfEstimator::predict_time_analytic(
    const runtime::TrainConfig& config, const DatasetStats& stats,
    double batch_nodes, double batch_edges, double hit_rate,
    double work_per_node) const {
  // Eq. 5-8 volumes through the shared white-box helper (the overlap
  // model derives its stage-balance features from the same split).
  const hw::IterationTimes t =
      cost_.iteration_times(analytic_iteration_volumes(
          config, stats, batch_nodes, batch_edges, hit_rate, work_per_node));
  // Eq. 4's analytic max() stays the simulated-T skeleton by design: the
  // runtime's ground-truth epoch_time_s is simulated *with* Eq. 4, so
  // the analytic ratio is exact in that domain. The fitted overlap
  // correction targets the *measured executor wall* instead (see
  // predict_overlap_ratio / OverlapModel).
  const double per_iter =
      config.pipeline_overlap ? t.overlapped() : t.sequential();
  return iterations_per_epoch(config, stats) * per_iter *
         stats.real_scale_factor;
}

double PerfEstimator::analytic_overlap_ratio(
    const runtime::TrainConfig& config, const DatasetStats& stats) const {
  if (!config.pipeline_overlap) return 1.0;
  const double b_nodes = std::max(analytic_batch_nodes(config, stats), 1.0);
  const double b_edges = b_nodes * std::max(stats.profile.avg_degree, 1.0);
  const double hit = analytic_cache_hit_prior(config, stats);
  const hw::IterationTimes t = cost_.iteration_times(
      analytic_iteration_volumes(config, stats, b_nodes, b_edges, hit));
  const double seq = t.sequential();
  return seq > 0.0 ? t.overlapped() / seq : 1.0;
}

double PerfEstimator::predict_overlap_ratio(
    const runtime::TrainConfig& config, const DatasetStats& stats,
    const OverlapExecutorShape& shape) const {
  const double analytic = analytic_overlap_ratio(config, stats);
  if (!config.pipeline_overlap) return 1.0;
  return overlap_model_.predict_ratio(config, stats, shape, analytic);
}

void PerfEstimator::fit(const std::vector<ProfiledRun>& runs) {
  GNAV_CHECK(runs.size() >= 8, "estimator needs a reasonable corpus");

  // Scale boosting capacity to the corpus: the default 80 rounds of
  // depth-3 trees can memorize a small corpus outright, which makes the
  // fit chaotic (bit-level input changes flip early splits and swing
  // out-of-sample r2 by >0.5) and lets residual extrapolation override
  // white-box monotonicity far from the training distribution. Shallow,
  // short boosting keeps small-corpus residuals a smooth correction.
  {
    ml::BoostingParams params;
    if (runs.size() < 96) {
      params.num_rounds = 40;
      params.learning_rate = 0.1;
      params.tree.max_depth = 2;
      params.tree.min_samples_leaf = 4;
      params.tree.min_samples_split = 8;
    }
    hit_model_ = ml::GradientBoostingRegressor(params);
    density_model_ = ml::GradientBoostingRegressor(params);
    work_model_ = ml::GradientBoostingRegressor(params);
    time_residual_ = ml::GradientBoostingRegressor(params);
    mem_residual_ = ml::GradientBoostingRegressor(params);
    acc_model_ = ml::GradientBoostingRegressor(params);
  }

  // Stage 1: intermediate quantity models. The overlap correction trains
  // only on rows that genuinely ran the async executor (OverlapModel
  // rejects sync rows, whose measured walls describe a serial loop); it
  // simply stays unfitted — analytic Eq. 4 fallback — when none exist.
  batch_model_.fit(runs);
  overlap_model_.fit(runs);
  {
    ml::Matrix x;
    std::vector<double> y_hit;
    std::vector<double> y_density;
    std::vector<double> y_work;
    for (const ProfiledRun& run : runs) {
      x.push_back(
          extract_features(run.config, run.stats, hw_, row_backend_id(run)));
      y_hit.push_back(run.report.cache_hit_rate);
      const double nodes = std::max(run.report.avg_batch_nodes, 1.0);
      y_density.push_back(
          std::log(std::max(run.report.avg_batch_edges, 1.0) / nodes));
      // Recover per-node sampling work from the simulated phase time.
      const double work_total =
          run.report.epoch_phases.sample_s / run.stats.real_scale_factor /
          run.stats.real_volume_scale * hw_.host.sample_throughput_per_s;
      const double iters = std::max(
          1.0, static_cast<double>(run.report.iterations_per_epoch));
      y_work.push_back(std::log(
          std::max(work_total / iters / nodes, 1e-3)));
    }
    hit_model_.fit(x, y_hit);
    density_model_.fit(x, y_density);
    work_model_.fit(x, y_work);
  }

  // Stage 2: residuals of the white-box formulas, evaluated through the
  // same prediction path used at inference time (stacked generalization).
  {
    ml::Matrix x;
    std::vector<double> y_time;
    std::vector<double> y_mem;
    std::vector<double> y_acc;
    for (const ProfiledRun& run : runs) {
      const auto f =
          extract_features(run.config, run.stats, hw_, row_backend_id(run));
      const double b_nodes =
          batch_model_.predict(run.config, run.stats, hw_);
      const double b_edges =
          b_nodes * std::exp(density_model_.predict_one(f));
      const double hit =
          std::clamp(hit_model_.predict_one(f), 0.0, 1.0);
      const double work =
          std::exp(work_model_.predict_one(f));
      const double t_white = predict_time_analytic(
          run.config, run.stats, b_nodes, b_edges, hit, work);
      const double mem_white =
          kFrameworkOverheadGb +
          analytic_model_memory_gb(run.config, run.stats) +
          analytic_cache_memory_gb(run.config, run.stats) +
          analytic_runtime_gb(run.config, run.stats, b_nodes, b_edges, hit);
      x.push_back(f);
      y_time.push_back(std::log(
          std::max(run.report.epoch_time_s, 1e-9) /
          std::max(t_white, 1e-9)));
      y_mem.push_back(std::log(
          std::max(run.report.peak_memory_gb, 1e-9) /
          std::max(mem_white, 1e-9)));
      y_acc.push_back(run.report.test_accuracy);
    }
    time_residual_.fit(x, y_time);
    mem_residual_.fit(x, y_mem);
    acc_model_.fit(x, y_acc);
  }
  fitted_ = true;
  log_info("perf estimator fitted on ", runs.size(), " profiled runs");
}

PerfPrediction PerfEstimator::predict(const runtime::TrainConfig& config,
                                      const DatasetStats& stats) const {
  return predict(config, stats, compute::kBlockedBackendId);
}

PerfPrediction PerfEstimator::predict(const runtime::TrainConfig& config,
                                      const DatasetStats& stats,
                                      const std::string& backend_id) const {
  GNAV_CHECK(fitted_, "predict before fit");
  const auto f = extract_features(config, stats, hw_, backend_id);
  PerfPrediction p;
  p.batch_nodes = batch_model_.predict(config, stats, hw_);
  p.batch_edges = p.batch_nodes * std::exp(density_model_.predict_one(f));
  p.cache_hit_rate = std::clamp(hit_model_.predict_one(f), 0.0, 1.0);

  const double work = std::exp(work_model_.predict_one(f));
  const double t_white = predict_time_analytic(
      config, stats, p.batch_nodes, p.batch_edges, p.cache_hit_rate, work);
  const double t_ratio =
      std::clamp(std::exp(time_residual_.predict_one(f)), 0.25, 4.0);
  p.time_s = t_white * t_ratio;

  const double mem_white =
      kFrameworkOverheadGb + analytic_model_memory_gb(config, stats) +
      analytic_cache_memory_gb(config, stats) +
      analytic_runtime_gb(config, stats, p.batch_nodes, p.batch_edges,
                          p.cache_hit_rate);
  const double m_ratio =
      std::clamp(std::exp(mem_residual_.predict_one(f)), 0.5, 2.0);
  p.memory_gb = mem_white * m_ratio;

  p.accuracy = std::clamp(acc_model_.predict_one(f), 0.0, 1.0);

  // Executor-overlap consultation: for pipelined configs the fitted
  // correction replaces the bare Eq. 4 max() as the predicted
  // wall/serial ratio of the async executor (analytic fallback when no
  // measured rows trained it; exactly 1.0 for sync configs).
  p.overlap_ratio_analytic = analytic_overlap_ratio(config, stats);
  p.overlap_fitted =
      config.pipeline_overlap && overlap_model_.is_fitted();
  // predict() is the explorer's inner-loop scorer: reuse the analytic
  // ratio just computed instead of re-deriving it via
  // predict_overlap_ratio's convenience path.
  p.overlap_ratio =
      config.pipeline_overlap
          ? overlap_model_.predict_ratio(config, stats, kCanonicalShape,
                                         p.overlap_ratio_analytic)
          : 1.0;
  return p;
}

}  // namespace gnav::estimator
