#include "support/string_utils.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

#include "support/error.hpp"

namespace gnav {

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(trim(s.substr(start, i - start)));
      start = i + 1;
    }
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

double parse_double(std::string_view s) {
  const std::string t = trim(s);
  double value = 0.0;
  const auto* begin = t.data();
  const auto* end = t.data() + t.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  GNAV_CHECK(ec == std::errc() && ptr == end,
             "cannot parse double from '" + t + "'");
  return value;
}

long long parse_int(std::string_view s) {
  const std::string t = trim(s);
  long long value = 0;
  const auto* begin = t.data();
  const auto* end = t.data() + t.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  GNAV_CHECK(ec == std::errc() && ptr == end,
             "cannot parse integer from '" + t + "'");
  return value;
}

}  // namespace gnav
