// Configuration templates reproducing existing systems on the unified
// backend (paper Fig. 3 "Templates" and Sec. 4.1 baselines). These are
// also the seeds of the DSE explorer's initial candidate set, which is
// how GNNavigator guarantees it never does worse than prior work.
#pragma once

#include <string>
#include <vector>

#include "runtime/train_config.hpp"

namespace gnav::runtime {

/// Vanilla PyG: unbiased node-wise sampling, no device cache.
TrainConfig template_pyg();

/// PaGraph under ample GPU memory: large static degree-ordered cache,
/// no cache updates (Pa-Full in Table 1).
TrainConfig template_pagraph_full();

/// PaGraph under a tight memory budget: small static cache (Pa-Low).
TrainConfig template_pagraph_low();

/// 2PGraph: static cache + cache-aware (locality-biased) sampling.
TrainConfig template_2pgraph();

/// GraphSAINT random-walk subgraph training.
TrainConfig template_graphsaint();

/// FastGCN layer-wise importance sampling.
TrainConfig template_fastgcn();

/// All templates, in the order the benchmarks report them.
std::vector<TrainConfig> all_templates();

/// Lookup by name ("pyg", "pagraph-full", "pagraph-low", "2pgraph",
/// "graphsaint", "fastgcn"); throws for unknown names.
TrainConfig template_by_name(const std::string& name);

}  // namespace gnav::runtime
