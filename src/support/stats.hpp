// Descriptive statistics helpers shared by graph profiling, the
// performance estimator, and benchmark reporting.
#pragma once

#include <cstddef>
#include <vector>

namespace gnav {

double mean(const std::vector<double>& xs);
double variance(const std::vector<double>& xs);  // population variance
double stddev(const std::vector<double>& xs);
double median(std::vector<double> xs);  // by value: sorts a copy

/// q in [0,1]; linear interpolation between order statistics.
double percentile(std::vector<double> xs, double q);

double min_of(const std::vector<double>& xs);
double max_of(const std::vector<double>& xs);

/// Pearson correlation; returns 0 when either side is constant.
double pearson(const std::vector<double>& xs, const std::vector<double>& ys);

/// Maximum-likelihood power-law exponent fit (Clauset et al. style) for
/// degrees >= x_min. Returns alpha; 0 when fewer than 2 usable samples.
double fit_power_law_alpha(const std::vector<std::size_t>& degrees,
                           std::size_t x_min);

}  // namespace gnav
