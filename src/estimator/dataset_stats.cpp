#include "estimator/dataset_stats.hpp"

namespace gnav::estimator {

DatasetStats compute_dataset_stats(const graph::Dataset& ds) {
  DatasetStats s;
  s.name = ds.name;
  s.profile = graph::profile_graph(ds.graph);
  s.num_train_nodes = ds.train_nodes.size();
  s.feature_dim = ds.feature_dim;
  s.num_classes = ds.num_classes;
  s.real_scale_factor = ds.real_scale_factor;
  s.real_feature_scale = ds.real_feature_scale;
  s.real_volume_scale = ds.real_volume_scale;
  s.coverage_at_10 = graph::degree_cache_coverage(ds.graph, 0.10);
  s.coverage_at_25 = graph::degree_cache_coverage(ds.graph, 0.25);
  s.coverage_at_50 = graph::degree_cache_coverage(ds.graph, 0.50);
  return s;
}

}  // namespace gnav::estimator
