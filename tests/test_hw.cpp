// Tests for the heterogeneous platform model and Eq. 4 cost model:
// profile sanity, phase-time monotonicity, and pipeline overlap.
#include <gtest/gtest.h>

#include "hw/cost_model.hpp"
#include "hw/platform.hpp"
#include "support/error.hpp"

namespace gnav::hw {
namespace {

TEST(Platform, NamedProfilesExist) {
  for (const auto& name : profile_names()) {
    const HardwareProfile p = make_profile(name);
    EXPECT_EQ(p.name, name);
    EXPECT_GT(p.device.memory_gb, 0.0);
    EXPECT_GT(p.link.bandwidth_gbps, 0.0);
  }
  EXPECT_THROW(make_profile("tpu-v9"), Error);
}

TEST(Platform, ProfileOrdering) {
  // a100 outclasses m90 on every axis; constrained is the weakest.
  const auto a100 = make_profile("a100");
  const auto m90 = make_profile("m90");
  const auto constrained = make_profile("constrained");
  EXPECT_GT(a100.device.compute_gflops, m90.device.compute_gflops);
  EXPECT_GT(a100.link.bandwidth_gbps, m90.link.bandwidth_gbps);
  EXPECT_GT(a100.device.memory_gb, m90.device.memory_gb);
  EXPECT_LT(constrained.device.memory_gb, m90.device.memory_gb);
}

TEST(Platform, FreeMemoryClampsAtZero) {
  const auto p = make_profile("m90");
  EXPECT_DOUBLE_EQ(p.free_device_memory_gb(p.device.memory_gb + 5.0), 0.0);
  EXPECT_GT(p.free_device_memory_gb(1.0), 0.0);
}

TEST(CostModel, PhaseTimesScaleLinearly) {
  const CostModel cm(make_profile("rtx4090"));
  EXPECT_NEAR(cm.compute_time_s(2e9), 2.0 * cm.compute_time_s(1e9), 1e-12);
  EXPECT_NEAR(cm.replace_time_s(2e9), 2.0 * cm.replace_time_s(1e9), 1e-12);
  EXPECT_NEAR(cm.sample_time_s(2e6), 2.0 * cm.sample_time_s(1e6), 1e-12);
  // transfer has a latency floor, so it is affine rather than linear
  const double t1 = cm.transfer_time_s(1e6);
  const double t2 = cm.transfer_time_s(2e6);
  EXPECT_GT(t2, t1);
  EXPECT_LT(t2, 2.0 * t1);
  EXPECT_DOUBLE_EQ(cm.transfer_time_s(0.0), 0.0);
}

TEST(CostModel, FasterLinkShortensTransfer) {
  const CostModel fast(make_profile("a100"));
  const CostModel slow(make_profile("constrained"));
  EXPECT_LT(fast.transfer_time_s(1e8), slow.transfer_time_s(1e8));
}

TEST(CostModel, RejectsNegativeVolumes) {
  const CostModel cm(make_profile("m90"));
  EXPECT_THROW(cm.compute_time_s(-1.0), gnav::Error);
  EXPECT_THROW(cm.transfer_time_s(-1.0), gnav::Error);
  EXPECT_THROW(cm.sample_time_s(-1.0), gnav::Error);
  EXPECT_THROW(cm.replace_time_s(-1.0), gnav::Error);
}

TEST(CostModel, OverlapTakesPipelineMax) {
  IterationTimes t;
  t.t_sample = 3.0;
  t.t_transfer = 2.0;   // host pipeline: 5
  t.t_replace = 1.0;
  t.t_compute = 3.5;    // device pipeline: 4.5
  EXPECT_DOUBLE_EQ(t.overlapped(), 5.0);
  EXPECT_DOUBLE_EQ(t.sequential(), 9.5);
  t.t_compute = 10.0;   // now device-bound
  EXPECT_DOUBLE_EQ(t.overlapped(), 11.0);
}

TEST(CostModel, IterationTimesComposition) {
  const CostModel cm(make_profile("rtx4090"));
  IterationVolumes v;
  v.sampling_work = 1e6;
  v.transfer_bytes = 1e7;
  v.replace_bytes = 1e6;
  v.compute_flops = 1e9;
  const IterationTimes t = cm.iteration_times(v);
  EXPECT_DOUBLE_EQ(t.t_sample, cm.sample_time_s(v.sampling_work));
  EXPECT_DOUBLE_EQ(t.t_transfer, cm.transfer_time_s(v.transfer_bytes));
  EXPECT_DOUBLE_EQ(t.t_replace, cm.replace_time_s(v.replace_bytes));
  EXPECT_DOUBLE_EQ(t.t_compute, cm.compute_time_s(v.compute_flops));
  EXPECT_LE(t.overlapped(), t.sequential());
}

TEST(SimClock, AccumulatesAndRejectsBackwards) {
  SimClock clock;
  clock.advance(1.5);
  clock.advance(0.5);
  EXPECT_DOUBLE_EQ(clock.now_s(), 2.0);
  EXPECT_THROW(clock.advance(-0.1), gnav::Error);
  clock.reset();
  EXPECT_DOUBLE_EQ(clock.now_s(), 0.0);
}

}  // namespace
}  // namespace gnav::hw
