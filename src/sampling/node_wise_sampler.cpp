#include <algorithm>
#include <unordered_set>

#include "sampling/build.hpp"
#include "sampling/sampler.hpp"
#include "support/error.hpp"

namespace gnav::sampling {

std::string to_string(SamplerKind kind) {
  switch (kind) {
    case SamplerKind::kNodeWise:
      return "sage";
    case SamplerKind::kLayerWise:
      return "fastgcn";
    case SamplerKind::kSaintWalk:
      return "saint_walk";
    case SamplerKind::kSaintNode:
      return "saint_node";
    case SamplerKind::kSaintEdge:
      return "saint_edge";
    case SamplerKind::kCluster:
      return "cluster";
  }
  return "?";
}

SamplerKind sampler_kind_from_string(const std::string& s) {
  if (s == "sage") return SamplerKind::kNodeWise;
  if (s == "fastgcn") return SamplerKind::kLayerWise;
  if (s == "saint_walk") return SamplerKind::kSaintWalk;
  if (s == "saint_node") return SamplerKind::kSaintNode;
  if (s == "saint_edge") return SamplerKind::kSaintEdge;
  if (s == "cluster") return SamplerKind::kCluster;
  throw Error("unknown sampler kind '" + s + "'");
}

NodeWiseSampler::NodeWiseSampler(std::vector<int> hops, SamplingBias bias)
    : hops_(std::move(hops)), bias_(bias) {
  GNAV_CHECK(!hops_.empty(), "hop list must be non-empty");
  for (int k : hops_) {
    GNAV_CHECK(k == -1 || k >= 1, "fanout must be -1 (full) or >= 1");
  }
}

namespace {

/// Samples up to `k` distinct neighbors of `v`, honoring the bias weights.
/// k == -1 keeps the whole neighborhood. Appends picked vertices to `out`
/// and sampled (v,u) edges to `edges`; returns candidate-scan work.
double fanout_one(const graph::CsrGraph& g, graph::NodeId v, int k,
                  const SamplingBias& bias, Rng& rng,
                  std::vector<graph::NodeId>& out,
                  std::vector<std::pair<graph::NodeId, graph::NodeId>>& edges) {
  const auto nb = g.neighbors(v);
  if (nb.empty()) return 0.0;
  const auto deg = static_cast<std::int64_t>(nb.size());
  if (k == -1 || deg <= k) {
    if (bias.active()) {
      // Locality-aware samplers (2PGraph, BGL) keep every resident
      // neighbor but probabilistically drop non-resident ones — that is
      // where their transfer savings (and accuracy cost) come from.
      const double keep_prob = 1.0 - 0.75 * bias.bias_rate;
      for (graph::NodeId u : nb) {
        const bool resident =
            (*bias.preference)[static_cast<std::size_t>(u)] != 0;
        if (resident || rng.bernoulli(keep_prob)) {
          out.push_back(u);
          edges.emplace_back(v, u);
        }
      }
      return static_cast<double>(deg);
    }
    for (graph::NodeId u : nb) {
      out.push_back(u);
      edges.emplace_back(v, u);
    }
    return static_cast<double>(deg);
  }
  if (!bias.active()) {
    // Uniform k-of-deg without replacement.
    const auto picks = rng.sample_without_replacement(deg, k);
    for (std::int64_t idx : picks) {
      const graph::NodeId u = nb[static_cast<std::size_t>(idx)];
      out.push_back(u);
      edges.emplace_back(v, u);
    }
    return static_cast<double>(k);
  }
  // Biased sampling without replacement via cumulative-weight draws with
  // rejection of duplicates (k << deg in practice).
  std::vector<double> cum(nb.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < nb.size(); ++i) {
    acc += bias.weight(nb[i]);
    cum[i] = acc;
  }
  std::unordered_set<std::size_t> chosen;
  int attempts = 0;
  const int max_attempts = k * 20;
  while (static_cast<int>(chosen.size()) < k && attempts < max_attempts) {
    ++attempts;
    chosen.insert(rng.sample_cumulative(cum));
  }
  for (std::size_t idx : chosen) {
    const graph::NodeId u = nb[idx];
    out.push_back(u);
    edges.emplace_back(v, u);
  }
  // Weighted selection is vectorized on real hosts (prefix weights live in
  // SIMD-friendly arrays); the work model charges the draws, not the
  // full-neighborhood weight scan.
  return static_cast<double>(attempts);
}

}  // namespace

MiniBatch NodeWiseSampler::sample(const graph::CsrGraph& g,
                                  std::span<const graph::NodeId> seeds,
                                  Rng& rng) const {
  GNAV_CHECK(!seeds.empty(), "cannot sample from an empty seed set");
  std::vector<graph::NodeId> frontier(seeds.begin(), seeds.end());
  std::vector<graph::NodeId> collected;
  std::vector<std::pair<graph::NodeId, graph::NodeId>> edges;
  std::unordered_set<graph::NodeId> visited(seeds.begin(), seeds.end());
  double work = static_cast<double>(seeds.size());

  for (int k : hops_) {
    std::vector<graph::NodeId> next;
    for (graph::NodeId v : frontier) {
      std::vector<graph::NodeId> picked;
      work += fanout_one(g, v, k, bias_, rng, picked, edges);
      for (graph::NodeId u : picked) {
        collected.push_back(u);
        if (visited.insert(u).second) next.push_back(u);
      }
    }
    frontier = std::move(next);
    if (frontier.empty()) break;
  }

  const auto ordered = detail::order_nodes(seeds, collected);
  return detail::build_from_edges(seeds, ordered, edges, work);
}

}  // namespace gnav::sampling
